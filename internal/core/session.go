package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/journal"
	"ginflow/internal/mq"
	"ginflow/internal/space"
	"ginflow/internal/trace"
	"ginflow/internal/transport"
	"ginflow/internal/workflow"
)

// Session is one workflow execution multiplexed onto a Manager's shared
// platform. It owns everything per-run: the agents, their supervisor, a
// private shared space, and a topic namespace ("wf<id>.") on the shared
// broker that keeps its molecules apart from every concurrent session's.
// A session is observed through Wait (the final report), Status (live
// per-task statuses from the session space) and Events (a live, typed,
// non-blocking event stream).
type Session struct {
	id       int64
	prefix   string // topic namespace, e.g. "wf3."
	def      *workflow.Definition
	services *agent.Registry
	mgr      *Manager
	sub      SubmitConfig
	// exec is the session's executor (possibly overridden per
	// submission); nil selects the centralized single-interpreter path.
	exec executor.Executor
	// jw write-through-journals the session's space stream (nil when the
	// manager has no journal or the session is centralized).
	jw *journal.SessionWriter
	// recovered marks a session rebuilt from its journal by Recover: its
	// space is pre-folded and agents seed from the recorded task states
	// instead of the pristine templates.
	recovered bool

	space    *space.Space
	recorder *trace.Recorder
	hub      *hub[trace.Event]
	cancel   context.CancelCauseFunc

	done chan struct{}

	mu     sync.Mutex
	report *Report
	err    error
}

func newSession(m *Manager, id int64, def *workflow.Definition, services *agent.Registry, sub SubmitConfig) *Session {
	s := &Session{
		id:       id,
		prefix:   fmt.Sprintf("wf%d.", id),
		def:      def,
		services: services,
		mgr:      m,
		sub:      sub,
		space:    space.New(),
		hub:      newHub[trace.Event](eventBuffer(def)),
		done:     make(chan struct{}),
	}
	if sub.CollectTrace {
		s.recorder = trace.NewRecorder(m.cluster.Clock())
		if m.cfg.TraceCap > 0 {
			s.recorder.SetCap(m.cfg.TraceCap)
		}
	} else {
		s.recorder = trace.NewForwarder(m.cluster.Clock())
	}
	s.recorder.AddSink(s.hub.publish)
	// Every session event also fans into the manager-level merged bus,
	// stamped with the session ID.
	s.recorder.AddSink(func(e trace.Event) {
		m.events.publish(SessionEvent{SessionID: id, Event: e})
	})
	// Per-kind event counters: kinds outside the prebuilt map resolve to
	// a nil counter, whose Inc is a no-op.
	s.recorder.AddSink(func(e trace.Event) {
		m.met.eventKinds[e.Kind].Inc()
	})
	return s
}

// journalBatch appends every decodable payload of a space batch to the
// session journal — invoked by the space's serve loop before the batch
// folds in, so journal order equals fold order. It returns the first
// write error: journaling is an explicit durability contract, so a
// failing journal fails the session instead of silently degrading.
func (s *Session) journalBatch(batch []mq.Message) error {
	var firstErr error
	for i := range batch {
		atoms := batch[i].Atoms
		if atoms == nil {
			parsed, err := hocl.ParseMolecules(batch[i].Payload)
			if err != nil {
				continue // the space will count it malformed too
			}
			// Hand the parsed form to the fold too: the space is the
			// sole consumer of this recycled batch buffer.
			batch[i].Atoms = parsed
			atoms = parsed
		}
		if err := s.jw.AppendStatus(atoms); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// maybeCheckpoint cuts a journal checkpoint when enough status records
// accumulated — invoked by the serve loop right after a fold, so the
// snapshot is consistent with every record before it.
func (s *Session) maybeCheckpoint() error {
	if s.jw.ShouldCheckpoint() {
		return s.jw.Checkpoint(s.space.Snapshot().Atoms())
	}
	return nil
}

// eventBuffer sizes a session's per-subscriber event buffer: the stream
// is non-blocking (a full buffer drops), so it is sized to hold a whole
// healthy run (~5 events per task) with headroom for recoveries.
func eventBuffer(def *workflow.Definition) int {
	n := 8*len(def.AllTaskIDs()) + 64
	if n < 256 {
		n = 256
	}
	return n
}

// ID returns the session's manager-unique identifier.
func (s *Session) ID() int64 { return s.id }

// TopicNamespace returns the session's broker topic prefix.
func (s *Session) TopicNamespace() string { return s.prefix }

// Cancel stops the session. Wait returns an error matching ErrCancelled
// (also wrapping cause, when non-nil). Cancelling a finished session is
// a no-op.
func (s *Session) Cancel(cause error) {
	switch {
	case cause == nil:
		s.cancel(ErrCancelled)
	case errors.Is(cause, ErrCancelled):
		s.cancel(cause)
	default:
		s.cancel(fmt.Errorf("%w: %w", ErrCancelled, cause))
	}
}

// Wait blocks until the session completes (or ctx ends) and returns the
// run report. Like the single-shot Run, a report is returned even when
// the run failed, so callers can inspect partial progress; the error
// matches ErrStalled / ErrCancelled via errors.Is where applicable.
func (s *Session) Wait(ctx context.Context) (*Report, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.report, s.err
	}
}

// Done returns a channel closed when the session has finished.
func (s *Session) Done() <-chan struct{} { return s.done }

// Status reports the live per-task statuses from the session's space
// (idle for tasks that have not reported yet). After completion it
// reflects the final report.
func (s *Session) Status() map[string]hoclflow.Status {
	s.mu.Lock()
	rep := s.report
	s.mu.Unlock()
	out := map[string]hoclflow.Status{}
	if rep != nil && rep.Statuses != nil {
		for id, st := range rep.Statuses {
			out[id] = st
		}
		return out
	}
	for _, id := range s.def.AllTaskIDs() {
		out[id] = s.space.Status(id)
	}
	return out
}

// Events returns a live stream of the session's enactment events (task
// lifecycle, service invocations, result transfers, adaptation triggers,
// crashes, recoveries). Delivery is non-blocking: a subscriber that
// stops draining loses events rather than stalling agents. The channel
// is closed when the session finishes; subscribing to a finished session
// yields an already-closed channel.
func (s *Session) Events() <-chan trace.Event {
	return s.hub.subscribe()
}

// EventsDropped reports how many live events were lost because an
// Events subscriber stopped draining (the lossy contract's observable
// cost; also surfaced in Report.EventsDropped).
func (s *Session) EventsDropped() int64 { return s.hub.droppedCount() }

// run drives the session to completion and publishes the outcome.
func (s *Session) run(ctx context.Context) {
	tctx, cancel := context.WithTimeoutCause(ctx, s.sub.Timeout, ErrStalled)
	defer cancel()

	met := s.mgr.met
	met.sessionsStarted.Inc()
	startWall := time.Now()

	var rep *Report
	var err error
	if s.exec == nil {
		rep, err = s.runCentralized(tctx)
	} else {
		rep, err = s.runDistributed(tctx)
	}

	met.sessionWall.Observe(time.Since(startWall).Seconds())
	if rep != nil {
		met.deployModel.Observe(rep.DeployTime)
		met.execModel.Observe(rep.ExecTime)
	}
	if err == nil {
		met.sessionsCompleted.Inc()
	} else {
		met.sessionsFailed.Inc()
	}

	s.settleJournal(err)
	s.mu.Lock()
	s.report = rep
	s.err = err
	s.mu.Unlock()
	s.hub.close()
	s.mgr.finish(s)
	close(s.done)
}

// settleJournal closes out the session's journal according to how the
// session ended. A manager shutdown (ErrManagerClosed) leaves the
// session resumable on disk — the operator chose to stop the process,
// not the workflow; every other outcome (success, stall, explicit
// cancel, hard failure) is terminal: Wait observed a final report, so
// the journal is marked done and reclaimed.
func (s *Session) settleJournal(err error) {
	if s.jw == nil {
		return
	}
	// The crash test hook froze the on-disk state mid-run: leave it
	// exactly as a process kill would have, resumable.
	if errors.Is(err, ErrManagerClosed) || s.jw.Crashed() {
		s.jw.Close()
		return
	}
	s.jw.Finish()
	if s.mgr.journal != nil {
		s.mgr.journal.RemoveSession(s.id)
	}
}

// classifyCause maps a context cause onto the API's sentinel errors.
func classifyCause(cause error) error {
	switch {
	case cause == nil:
		return nil
	case errors.Is(cause, ErrStalled), errors.Is(cause, ErrCancelled):
		return cause
	case errors.Is(cause, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrStalled, cause)
	default:
		return fmt.Errorf("%w: %v", ErrCancelled, cause)
	}
}

// runCentralized executes the whole workflow on a single HOCL
// interpreter over the global multiset — the §III semantics, useful as a
// baseline and for debugging (the paper's "centralized executor").
func (s *Session) runCentralized(ctx context.Context) (*Report, error) {
	def, services := s.def, s.services
	prog, err := def.TranslateCentral()
	if err != nil {
		return nil, err
	}
	clus := s.mgr.cluster
	clock := clus.Clock()
	rng := clus.Rand()
	chaos := s.mgr.chaos
	rc := s.mgr.cfg.Retry.WithDefaults()

	eng := hocl.NewEngine()
	eng.Funcs.Register(hoclflow.FnInvoke, func(args []hocl.Atom) ([]hocl.Atom, error) {
		name, ok := args[0].(hocl.Str)
		if !ok {
			return nil, fmt.Errorf("invoke: bad service name %v", args[0])
		}
		svc, ok := services.Lookup(string(name))
		if !ok {
			return nil, fmt.Errorf("invoke: %w %q", ErrUnknownService, name)
		}
		var params []hocl.Atom
		if len(args) > 1 {
			if l, ok := args[1].(hocl.List); ok {
				params = l
			}
		}
		// The invocation boundary is chaos-perturbed exactly like the
		// agents' (rideOutFaults): slow calls succeed late, errors and
		// timeouts cost their modelled delay and retry under the bounded
		// backoff budget, and exhaustion fails the reduction with the
		// failure.ErrRetriesExhausted chain.
		dur := svc.InvocationDuration(rng)
		for attempt := 1; ; attempt++ {
			switch f := chaos.Draw(failure.BoundaryInvoke); f.Kind {
			case failure.FaultSlow:
				clock.Sleep(dur + f.Delay)
			case failure.FaultError, failure.FaultTimeout:
				cost := f.Delay
				if f.Kind == failure.FaultTimeout {
					cost = dur // the service ran to its deadline before the response was lost
				}
				clock.Sleep(cost)
				if attempt >= rc.MaxAttempts {
					return nil, fmt.Errorf("invoke %s: %d attempts: %w (%w)",
						name, attempt, failure.ErrRetriesExhausted, f.Err)
				}
				clock.Sleep(rc.Delay(attempt))
				continue
			default:
				clock.Sleep(dur)
			}
			break
		}
		res, err := svc.Invoke(params)
		if err != nil {
			return []hocl.Atom{hoclflow.AtomERROR}, nil
		}
		return []hocl.Atom{res}, nil
	})
	for name, fn := range prog.Funcs {
		eng.Funcs.Register(name, fn)
	}

	start := clock.Now()
	if err := eng.Reduce(prog.Global); err != nil {
		return nil, err
	}
	execTime := clock.Now() - start

	rep := &Report{
		Workflow: def.Name,
		Executor: string(executor.KindCentralized),
		Broker:   "none",
		Tasks:    def.TaskCount(),
		Agents:   0,
		Nodes:    len(clus.Nodes()),
		ExecTime: execTime, TotalTime: execTime,
		Statuses: map[string]hoclflow.Status{},
		Results:  map[string][]string{},
	}
	for _, id := range def.AllTaskIDs() {
		if sub := hoclflow.FindTaskSub(prog.Global, id); sub != nil {
			rep.Statuses[id] = hoclflow.StatusOf(sub)
		}
	}
	for _, exit := range def.Exits() {
		sub := hoclflow.FindTaskSub(prog.Global, exit)
		if sub == nil {
			continue
		}
		for _, a := range hoclflow.Results(sub) {
			rep.Results[exit] = append(rep.Results[exit], a.String())
		}
		if rep.Statuses[exit] != hoclflow.StatusCompleted {
			return rep, fmt.Errorf("core: %w: exit task %s is %v", ErrStalled, exit, rep.Statuses[exit])
		}
	}
	for _, m := range prog.Global.Atoms() {
		if tp, ok := m.(hocl.Tuple); ok && len(tp) == 2 && tp[0].Equal(hoclflow.KeyTRIGGER) {
			if id, ok := tp[1].(hocl.Str); ok {
				rep.Adaptations = append(rep.Adaptations, string(id))
			}
		}
	}
	sort.Strings(rep.Adaptations)
	if cause := classifyCause(context.Cause(ctx)); cause != nil {
		// The single interpreter is not interruptible mid-reduction; a
		// cancellation or timeout that raced the reduction still surfaces.
		return rep, fmt.Errorf("core: workflow did not complete: %w", cause)
	}
	return rep, nil
}

// deployWithRetry wraps the executor's Deploy with the chaos schedule's
// deployment boundary: an injected fault costs one backoff and a retry,
// and a spent retry budget fails the session with the cause chain
// (failure.ErrRetriesExhausted) instead of deploying at all.
func (s *Session) deployWithRetry(ctx context.Context, specs []workflow.AgentSpec, clus *cluster.Cluster) ([]executor.Placement, float64, error) {
	ch := s.mgr.chaos
	rc := s.mgr.cfg.Retry.WithDefaults()
	for attempt := 1; ; attempt++ {
		if f := ch.Draw(failure.BoundaryDeploy); f.Kind == failure.FaultError {
			s.mgr.met.deployRetries.Inc()
			if attempt >= rc.MaxAttempts {
				return nil, 0, fmt.Errorf("core: deployment after %d attempts: %w (%w)",
					attempt, failure.ErrRetriesExhausted, f.Err)
			}
			if clus.Clock().SleepCtx(ctx, rc.Delay(attempt)) != nil {
				return nil, 0, context.Cause(ctx)
			}
			continue
		}
		return s.exec.Deploy(ctx, specs, clus)
	}
}

// runDistributed provisions agents through the executor under the
// session's topic namespace and runs the decentralised engine.
func (s *Session) runDistributed(ctx context.Context) (*Report, error) {
	def, services, cfg := s.def, s.services, s.mgr.cfg
	specs, err := def.TranslateAgents()
	if err != nil {
		return nil, err
	}
	clus := s.mgr.cluster
	clock := clus.Clock()
	broker := s.mgr.broker
	spaceTopic := space.TopicFor(s.prefix)
	topicPrefix := s.prefix + agent.DefaultTopicPrefix

	// A recovered session does not start from the pristine templates:
	// each agent seeds from the journaled task state, and the DAG wiring
	// is reconciled so results whose delivery the crash swallowed are
	// re-sent (DESIGN.md "Durability & recovery").
	var seeded map[string]*hocl.Solution
	if s.recovered {
		seeded = s.space.TaskStates()
		if err := recoverSpecs(def, specs, seeded, s.space.Triggered()); err != nil {
			return nil, err
		}
	}

	// Whatever happens past this point, the session must not leave state
	// behind on the shared platform: its broker topics are purged once
	// the agents have stopped. (Node slots are released by their own
	// defer below.)
	defer broker.PurgeTopics(s.prefix)

	// The space consumes status updates; attach before any agent runs.
	// The space-client boundary is chaos-perturbed too: delivered status
	// batches may be deferred or double-folded before they reach the
	// multiset (drops are deferred, never lost — FlushDeferred below
	// drains the remainder so the run still converges).
	sp := s.space
	sp.SetClock(clock)
	sp.SetChaos(s.mgr.chaos)
	if err := sp.Attach(broker, spaceTopic); err != nil {
		return nil, err
	}
	// The resync channel: a delta push that fails to anchor makes the
	// space ask that agent for an immediate full snapshot instead of
	// staying stale until the agent's next natural full push.
	sp.SetResyncRequester(func(task string) {
		_ = broker.PublishAtoms(agent.Topic(topicPrefix, task), []hocl.Atom{hoclflow.ResyncMarker(task)})
	})
	spaceCtx, stopSpace := context.WithCancel(context.Background())
	defer stopSpace()
	spaceFailed := make(chan error, 1)
	// waitCtx wakes the virtual-mode completion wait on failure: a
	// single-token schedule cannot multi-select over channels, so every
	// failure sender buffers its error and cancels this context, and the
	// virtual waitErr path maps the wake back to the buffered cause.
	// (Real mode keeps the channel select; cancelling is harmless there.)
	waitCtx, failNow := context.WithCancel(ctx)
	defer failNow()
	// journalErr funnels write-through failures into the session's
	// failure channel: durability was asked for, so a failing journal
	// fails the session instead of silently degrading.
	journalErr := func(err error) {
		if err == nil {
			return
		}
		select {
		case spaceFailed <- fmt.Errorf("journal write-through: %w", err):
		default:
		}
		failNow()
	}
	serveSpace := func() error { return sp.Serve(spaceCtx, broker, spaceTopic) }
	if s.jw != nil {
		// Write-through journaling: every space-topic payload is appended
		// to the session journal before it is folded into the space (the
		// write-ahead contract), and checkpoints are cut on the same
		// goroutine so snapshots are consistent with the records before
		// them.
		serveSpace = func() error {
			return sp.ServeHooked(spaceCtx, broker, spaceTopic,
				func(batch []mq.Message) { journalErr(s.journalBatch(batch)) },
				func() { journalErr(s.maybeCheckpoint()) })
		}
		// Inbox write-through (log broker only): every direct-topic
		// publish is journaled as it lands in the broker log, so a
		// manager crash after resume can still replay pre-crash inbox
		// traffic into a fresh broker. Rotation rewrites the full history
		// from the live log into each new segment head.
		if rep, ok := broker.(mq.Replayable); ok && s.mgr.inboxJournals != nil {
			s.mgr.registerInboxJournal(s.id, func(msg mq.Message) {
				if !strings.HasPrefix(msg.Topic, topicPrefix) {
					return
				}
				atoms := msg.Atoms
				if atoms == nil {
					parsed, err := hocl.ParseMolecules(msg.Payload)
					if err != nil {
						return
					}
					atoms = parsed
				}
				journalErr(s.jw.AppendInbox(msg.Topic, atoms))
			})
			defer s.mgr.unregisterInboxJournal(s.id)
			s.jw.SetInboxSource(func() []journal.InboxRecord {
				var recs []journal.InboxRecord
				for _, topic := range broker.Topics(topicPrefix) {
					for _, m := range rep.Log(topic) {
						atoms := m.Atoms
						if atoms == nil {
							parsed, err := hocl.ParseMolecules(m.Payload)
							if err != nil {
								continue
							}
							atoms = parsed
						}
						recs = append(recs, journal.InboxRecord{Topic: topic, Atoms: atoms})
					}
				}
				return recs
			})
		}
	}
	clock.Go(func() {
		err := serveSpace()
		if err != nil && spaceCtx.Err() == nil {
			spaceFailed <- err
			failNow()
		}
	})

	// Deployment (§IV-C): claim resources, place agents. Injected
	// deployment faults retry with backoff before giving up.
	placements, deployTime, err := s.deployWithRetry(ctx, specs, clus)
	if err != nil {
		if cause := classifyCause(context.Cause(ctx)); cause != nil {
			return nil, fmt.Errorf("core: deployment aborted: %w", cause)
		}
		return nil, err
	}
	defer func() {
		for _, p := range placements {
			p.Node.Release()
		}
	}()

	nodeOf := map[string]*cluster.Node{}
	for _, p := range placements {
		nodeOf[p.Spec.Task.Name] = p.Node
	}

	injector := failure.New(s.sub.FailureP, s.sub.FailureT, clus.Rand())

	// Remote enactment: when the manager hosts a transport listener and
	// worker processes have joined, the agents run out-of-process — the
	// session fans its tasks out over the joined nodes and supervises
	// through the control protocol instead of in-process goroutines.
	// Recovered sessions stay in-process: their agents seed from
	// journaled solutions, which do not travel over an Assignment.
	var rh *remoteHost
	useRemote := s.mgr.server != nil && !s.recovered && s.mgr.server.NodeCount() > 0

	// Launch supervised agents. Every first incarnation subscribes
	// before any agent starts reducing: a fast entry task must not
	// publish results into the void (fatal on the volatile queue broker).
	sup := &supervisor{
		cluster: clus, broker: broker, services: services,
		injector: injector, placements: nodeOf,
		topicPrefix: topicPrefix, spaceTopic: spaceTopic,
		restartDelay: cfg.RestartDelay, maxRecoveries: cfg.MaxRecoveries,
		recorder: s.recorder, metrics: s.mgr.met.agents,
		chaos: s.mgr.chaos, retry: cfg.Retry,
	}
	var firstIncarnations []*agent.Agent
	if useRemote {
		// Remote READY is the same barrier: every worker reports READY
		// only after all its inbox subscriptions reached the broker.
		rh, err = s.launchRemote(ctx, sp, spaceTopic, topicPrefix, specs)
		if err != nil {
			return nil, err
		}
		defer rh.close()
	} else {
		firstIncarnations = make([]*agent.Agent, len(placements))
		for i, p := range placements {
			a := sup.newAgent(p, 0)
			if err := a.Subscribe(); err != nil {
				return nil, err
			}
			firstIncarnations[i] = a
		}
	}

	// Post-resume convergence: ask every recovered agent for a full
	// status push through the resync channel. Fresh incarnations push
	// full snapshots anyway, so this only forces the order — the space
	// re-hears every rebuilt task even if its seeded state is already
	// final.
	for name := range seeded {
		sp.RequestResync(name)
	}

	agentsCtx, stopAgents := context.WithCancel(ctx)
	defer stopAgents()
	execStart := clock.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, len(placements))
	var remoteFailed <-chan error
	if useRemote {
		rh.rs.Start()
		remoteFailed = rh.rs.Failed()
	} else {
		for i, p := range placements {
			wg.Add(1)
			p, first := p, firstIncarnations[i]
			clock.Go(func() {
				defer wg.Done()
				if err := sup.run(agentsCtx, p, first); err != nil && agentsCtx.Err() == nil {
					errCh <- err
					failNow()
				}
			})
		}
	}

	// Wait for the exit tasks to report completion in the space.
	waitErr := func() error {
		if clock.Virtual() {
			// Participant path: WaitCompleted parks on the space Cond;
			// failures wake it through waitCtx and are mapped back to
			// their buffered cause here.
			err := sp.WaitCompleted(waitCtx, def.Exits())
			if err == nil {
				return nil
			}
			select {
			case e := <-errCh:
				return fmt.Errorf("core: agent failed: %w", e)
			default:
			}
			select {
			case e := <-spaceFailed:
				return fmt.Errorf("core: space failed: %w", e)
			default:
			}
			if cause := classifyCause(context.Cause(ctx)); cause != nil {
				return cause
			}
			return err
		}
		done := make(chan error, 1)
		go func() { done <- sp.WaitCompleted(ctx, def.Exits()) }()
		select {
		case err := <-done:
			if err != nil {
				if cause := classifyCause(context.Cause(ctx)); cause != nil {
					return cause
				}
			}
			return err
		case err := <-errCh:
			return fmt.Errorf("core: agent failed: %w", err)
		case err := <-remoteFailed:
			return fmt.Errorf("core: agent failed: %w", err)
		case err := <-spaceFailed:
			return fmt.Errorf("core: space failed: %w", err)
		}
	}()
	execTime := clock.Now() - execStart
	stopAgents()
	if clock.Virtual() {
		// The agent participants need the run token to observe the
		// cancellation and unwind; leave the schedule while they do,
		// then rejoin for the settle drain and report assembly.
		clock.Exit()
		wg.Wait()
		clock.Enter()
	} else {
		wg.Wait()
	}
	var remoteStats transport.NodeDone
	if useRemote {
		remoteStats = rh.stop()
	}

	// Chaos settle drain: delayed, duplicated and redelivered status
	// pushes may still be in flight when the exit tasks report complete;
	// let them fold into the space (the version gate drops the stale
	// ones) before the final state is read, so the fingerprint is
	// deterministic for a given seed.
	if waitErr == nil {
		if d := s.mgr.chaos.SettleSeconds(); d > 0 {
			clock.SleepCtx(ctx, d)
		}
	}
	// Space-boundary chaos defers dropped batches instead of losing
	// them; fold the remainder in before the final state is read.
	sp.FlushDeferred()

	if n := s.hub.droppedCount(); n > 0 {
		s.recorder.Record(trace.EventsDropped, "", 0,
			fmt.Sprintf("%d events lost to slow consumers", n))
	}

	rep := &Report{
		Workflow:   def.Name,
		Executor:   s.exec.Name(),
		Broker:     string(cfg.Broker),
		Tasks:      def.TaskCount(),
		Agents:     len(placements),
		Nodes:      len(clus.Nodes()),
		DeployTime: deployTime, ExecTime: execTime,
		TotalTime:  deployTime + execTime,
		Failures:   sup.failures(),
		Recoveries: sup.recoveries(),
		Messages:   broker.PublishedPrefix(s.prefix),
		Statuses:   map[string]hoclflow.Status{},
		Results:    map[string][]string{},

		DuplicatesSuppressed: sup.duplicates(),
		EventsDropped:        s.hub.droppedCount(),
	}
	if useRemote {
		// Out-of-process agents report their crash/respawn/dedup counts
		// in their DONE frames; the in-process supervisor saw nothing.
		rep.Failures = remoteStats.Failures
		rep.Recoveries = remoteStats.Recoveries
		rep.DuplicatesSuppressed = remoteStats.Duplicates
	}
	rep.Adaptations = sp.Triggered()
	rep.Events = s.recorder.Events()
	for _, id := range def.AllTaskIDs() {
		rep.Statuses[id] = sp.Status(id)
	}
	for _, exit := range def.Exits() {
		for _, a := range sp.Results(exit) {
			rep.Results[exit] = append(rep.Results[exit], a.String())
		}
	}
	if waitErr != nil {
		return rep, fmt.Errorf("core: workflow did not complete: %w", waitErr)
	}
	return rep, nil
}

// hub fans values out to subscribers. It is deliberately lossy under
// backpressure: publish never blocks, so a slow observer cannot stall a
// reducing agent. It backs both the per-session event stream
// (hub[trace.Event]) and the manager-level merged bus
// (hub[SessionEvent]).
type hub[T any] struct {
	buf int

	// dropped counts deliveries lost to full subscriber buffers — the
	// observable cost of the lossy contract (surfaced in Report and on
	// the EventsDropped accessors).
	dropped atomic.Int64

	mu     sync.Mutex
	closed bool
	subs   []chan T
}

func newHub[T any](buf int) *hub[T] { return &hub[T]{buf: buf} }

func (h *hub[T]) publish(e T) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for _, ch := range h.subs {
		select {
		case ch <- e:
		default: // lossy: never block the recording agent
			h.dropped.Add(1)
		}
	}
}

// droppedCount returns how many deliveries were lost to slow consumers.
func (h *hub[T]) droppedCount() int64 { return h.dropped.Load() }

func (h *hub[T]) subscribe() <-chan T {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan T, h.buf)
	if h.closed {
		close(ch)
		return ch
	}
	h.subs = append(h.subs, ch)
	return ch
}

func (h *hub[T]) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, ch := range h.subs {
		close(ch)
	}
}
