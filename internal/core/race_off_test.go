//go:build !race

package core

// raceEnabled reports that the race detector is compiled in; see
// race_on_test.go.
const raceEnabled = false
