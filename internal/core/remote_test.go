package core

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/hoclflow"
	"ginflow/internal/montage"
	"ginflow/internal/mq"
	"ginflow/internal/transport"
	"ginflow/internal/workflow"
)

// The multi-process integration suite: the test binary re-executes
// itself as worker processes (the examples/resume self-exec pattern),
// each joining the manager's transport listener over real TCP and
// hosting a share of the session's agents. Every workload must converge
// to the same space fingerprint as its in-process run — with the agents
// in at least two separate OS processes, under socket chaos, and across
// forced mid-run disconnects.

const (
	envRemoteAddr = "GINFLOW_REMOTE_ADDR"
	envRemoteKind = "GINFLOW_REMOTE_KIND"
)

func TestMain(m *testing.M) {
	if addr := os.Getenv(envRemoteAddr); addr != "" {
		remoteWorkerMain(addr, os.Getenv(envRemoteKind))
		return
	}
	os.Exit(m.Run())
}

// remoteWorkerMain is the worker-process entry: join, announce, serve
// until the parent closes our stdin.
func remoteWorkerMain(addr, kind string) {
	n, err := transport.Join(addr, transport.NodeConfig{
		Name:     "test-worker-" + kind,
		Services: workerRegistry(kind),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	fmt.Printf("JOINED %d\n", n.NodeID())
	io.Copy(io.Discard, os.Stdin)
	n.Close()
}

// workerRegistry builds the service registry a worker of the given
// workload kind hosts — implementations cannot travel over the wire, so
// the worker process registers them itself.
func workerRegistry(kind string) *agent.Registry {
	reg := agent.NewRegistry()
	switch kind {
	case "montage":
		montage.RegisterServices(reg)
	case "adapted":
		reg.RegisterNoop(0.1, "split", "work", "merge", "workalt")
		reg.RegisterFailing("flaky", 0.1)
	case "slow":
		reg.RegisterNoop(1.0, "split", "work", "merge", "workalt")
	default: // "diamond"
		reg.RegisterNoop(0.1, "split", "work", "merge", "workalt")
	}
	return reg
}

// spawnWorkers re-executes the test binary n times as worker processes
// joined to addr, returning after every worker's JOINED announcement —
// the fleet is in place before the caller submits. Workers exit when
// the test ends (their stdin pipes close on cleanup).
func spawnWorkers(t *testing.T, addr, kind string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), envRemoteAddr+"="+addr, envRemoteKind+"="+kind)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn worker: %v", err)
		}
		t.Cleanup(func() {
			stdin.Close()
			cmd.Wait()
		})
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "JOINED") {
			t.Fatalf("worker %d never joined: %q (%v)", i, line, err)
		}
		go io.Copy(io.Discard, stdout)
	}
}

// remoteRun submits def on a listener-hosting manager with `workers`
// worker processes of the given kind and returns the report plus the
// converged space fingerprint.
func remoteRun(t *testing.T, def *workflow.Definition, services *agent.Registry, cfg Config, kind string, workers int) (*Report, uint64) {
	t.Helper()
	cfg.Listen = "127.0.0.1:0"
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	spawnWorkers(t, m.ListenerAddr(), kind, workers)
	if got := m.ConnectedNodes(); got != workers {
		t.Fatalf("connected nodes = %d, want %d", got, workers)
	}
	s, err := m.Submit(context.Background(), def, services)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Wait(context.Background())
	if err != nil {
		t.Fatalf("remote run failed: %v (report %v)", err, rep)
	}
	return rep, s.space.StateFingerprint()
}

// requireSameOutcome pins the remote run to the in-process baseline:
// identical fingerprint, statuses and exit results.
func requireSameOutcome(t *testing.T, baseRep, rep *Report, baseFP, fp uint64) {
	t.Helper()
	if fp != baseFP {
		t.Errorf("remote space fingerprint %016x diverged from in-process %016x", fp, baseFP)
	}
	for task, st := range baseRep.Statuses {
		if rep.Statuses[task] != st {
			t.Errorf("task %s: remote %v, in-process %v", task, rep.Statuses[task], st)
		}
	}
	for exit, want := range baseRep.Results {
		if got := strings.Join(rep.Results[exit], "|"); got != strings.Join(want, "|") {
			t.Errorf("result[%s]: remote %q, in-process %q", exit, got, want)
		}
	}
}

func remoteBaseConfig() Config {
	return Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindLog,
		Cluster:  fastCluster(8),
		Timeout:  2 * time.Minute,
	}
}

// TestRemoteDiamondMatchesInProcess runs the diamond benchmark with its
// agents spread over two separate OS processes and requires the exact
// in-process outcome.
func TestRemoteDiamondMatchesInProcess(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(3, 3, false))
	services := diamondServices(nil)
	baseRep, baseFP := runWithFingerprint(t, def, services, remoteBaseConfig())
	rep, fp := remoteRun(t, def, services, remoteBaseConfig(), "diamond", 2)
	requireSameOutcome(t, baseRep, rep, baseFP, fp)
	if rep.Statuses[workflow.DiamondMergeName] != hoclflow.StatusCompleted {
		t.Fatalf("merge = %v", rep.Statuses[workflow.DiamondMergeName])
	}
	if rep.Messages == 0 {
		t.Error("no messages crossed the manager broker; agents did not run through the transport")
	}
}

// TestRemoteMontageMatchesInProcess runs the 118-task Montage workload
// (§V-D) over three worker processes.
func TestRemoteMontageMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("Montage is slow")
	}
	services := agent.NewRegistry()
	montage.RegisterServices(services)
	def := montage.Workflow()
	baseRep, baseFP := runWithFingerprint(t, def, services, remoteBaseConfig())
	rep, fp := remoteRun(t, def, services, remoteBaseConfig(), "montage", 3)
	requireSameOutcome(t, baseRep, rep, baseFP, fp)
}

// TestRemoteAdaptationMatchesInProcess runs the §V-B scenario — a
// failing mesh service triggers the on-the-fly body replacement — with
// the agents (including the replacement ones) hosted out-of-process.
func TestRemoteAdaptationMatchesInProcess(t *testing.T) {
	spec := workflow.DefaultDiamondSpec(2, 2, false)
	def := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, false, "workalt")
	last, _ := def.TaskByID(workflow.LastMeshTask(spec))
	last.Service = "flaky"
	services := diamondServices(nil)
	services.RegisterFailing("flaky", 0.1)

	baseRep, baseFP := runWithFingerprint(t, def, services, remoteBaseConfig())
	if len(baseRep.Adaptations) == 0 {
		t.Fatal("baseline triggered no adaptation; test is vacuous")
	}
	rep, fp := remoteRun(t, def, services, remoteBaseConfig(), "adapted", 2)
	requireSameOutcome(t, baseRep, rep, baseFP, fp)
	if strings.Join(rep.Adaptations, ",") != strings.Join(baseRep.Adaptations, ",") {
		t.Errorf("remote adaptations %v, in-process %v", rep.Adaptations, baseRep.Adaptations)
	}
}

// TestRemoteSocketChaosConverges perturbs the socket boundary — remote
// publish dispatches dropped, duplicated, delayed and reordered between
// the TCP bridge and the broker — and requires the seeded run to settle
// on the clean in-process fingerprint.
func TestRemoteSocketChaosConverges(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(3, 3, false))
	services := diamondServices(nil)
	baseRep, baseFP := runWithFingerprint(t, def, services, remoteBaseConfig())

	for _, seed := range []int64{400, 401, 402} {
		cfg := remoteBaseConfig()
		cfg.Chaos = failure.ChaosConfig{
			Seed:           seed,
			SocketDropP:    0.10,
			SocketDupP:     0.10,
			SocketDelayP:   0.15,
			SocketReorderP: 0.05,
		}
		cfg.Retry = failure.RetryConfig{MaxAttempts: 8, BackoffBase: 0.25}
		cfg.Listen = "127.0.0.1:0"
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spawnWorkers(t, m.ListenerAddr(), "diamond", 2)
		s, err := m.Submit(context.Background(), def, services)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Wait(context.Background())
		if err != nil {
			t.Fatalf("seed %d: %v (report %v)", seed, err, rep)
		}
		fp := s.space.StateFingerprint()
		requireSameOutcome(t, baseRep, rep, baseFP, fp)
		if m.Chaos().Faults() == 0 {
			t.Errorf("seed %d: no socket fault ever fired; chaos run is vacuous", seed)
		}
		m.Close()
	}
}

// TestRemoteReconnectResumes forces connection drops mid-run: the
// workers must reconnect under their original identities, the reliable
// link must replay what the outage swallowed, and the run must still
// land on the in-process fingerprint.
func TestRemoteReconnectResumes(t *testing.T) {
	def := workflow.Sequence(6, "work", "payload")
	services := agent.NewRegistry()
	services.RegisterNoop(1.0, "work")

	base := remoteBaseConfig()
	base.Cluster.Scale = 500 * time.Microsecond
	baseRep, baseFP := runWithFingerprint(t, def, services, base)

	cfg := base
	cfg.Listen = "127.0.0.1:0"
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	spawnWorkers(t, m.ListenerAddr(), "slow", 2)
	s, err := m.Submit(context.Background(), def, services)
	if err != nil {
		t.Fatal(err)
	}
	// Sever every worker's socket a few times while the workflow runs;
	// each drop forces a full reconnect + outbox replay round.
	for i := 0; i < 3; i++ {
		select {
		case <-s.Done():
		case <-time.After(2 * time.Millisecond):
			m.server.DropConnections()
		}
	}
	rep, err := s.Wait(context.Background())
	if err != nil {
		t.Fatalf("run with forced disconnects failed: %v (report %v)", err, rep)
	}
	requireSameOutcome(t, baseRep, rep, baseFP, s.space.StateFingerprint())
	// Reconnects must resume the existing identities, not mint new ones.
	if got := m.ConnectedNodes(); got != 2 {
		t.Errorf("node count after reconnects = %d, want 2", got)
	}
}

// TestRemoteUnknownServiceFailsFast: a worker that cannot host its
// assignment (service not registered in its process) reports FAIL
// instead of READY and the session must fail promptly with the cause.
func TestRemoteUnknownServiceFailsFast(t *testing.T) {
	def := workflow.Sequence(2, "exotic", "payload")
	// The manager-side registry knows the service (submission-time
	// validation passes); the worker process does not.
	services := agent.NewRegistry()
	services.RegisterNoop(0.1, "exotic")

	cfg := remoteBaseConfig()
	cfg.Listen = "127.0.0.1:0"
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	spawnWorkers(t, m.ListenerAddr(), "diamond", 1)
	s, err := m.Submit(context.Background(), def, services)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Wait(context.Background())
	if err == nil {
		t.Fatal("session completed although no worker hosts the service")
	}
	var nf *transport.ErrNodeFailed
	if !errors.As(err, &nf) {
		t.Fatalf("error chain misses the node failure: %v", err)
	}
	if !strings.Contains(nf.Msg, "exotic") {
		t.Errorf("failure does not name the missing service: %q", nf.Msg)
	}
	if time.Since(start) > 30*time.Second {
		t.Error("assignment failure did not preempt the session timeout")
	}
}

// TestListenRequiresBroker: a centralized manager has no broker for the
// listener to front.
func TestListenRequiresBroker(t *testing.T) {
	_, err := NewManager(Config{Executor: executor.KindCentralized, Listen: "127.0.0.1:0"})
	if !errors.Is(err, ErrNoBroker) {
		t.Fatalf("err = %v, want ErrNoBroker", err)
	}
}
