// Package core implements the GinFlow engine: the paper's contribution
// assembled. A long-lived Manager owns the shared platform — the
// simulated cluster, the message broker and the executor — and
// multiplexes any number of concurrent workflow Sessions over it. Each
// session translates its workflow definition to HOCL, provisions service
// agents through the executor, wires them to the broker and a
// per-session shared space under a per-session topic namespace (so
// concurrent runs' molecules never cross), supervises the agents
// (respawning crashed agents with log replay, §IV-B), and reports the
// run: deployment time, execution time, failures, recoveries, triggered
// adaptations and results — the quantities the paper's evaluation (§V)
// is built from.
//
// Run is the single-shot compatibility path: it builds a manager,
// submits one session and waits — exactly the paper's one-workflow-per-
// invocation shape, expressed through the long-lived API.
package core

import (
	"context"
	"fmt"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/hoclflow"
	"ginflow/internal/journal"
	"ginflow/internal/mq"
	"ginflow/internal/obs"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// Config selects the run environment, mirroring the paper's CLI options
// ("executor, messaging framework, credentials, etc.", §IV-D). A Config
// parameterises a Manager; the ginflow façade builds one from
// functional options.
type Config struct {
	// Executor: ssh, mesos or centralized (default ssh).
	Executor executor.Kind
	// Broker: activemq or kafka (default activemq). Ignored by the
	// centralized executor.
	Broker mq.Kind
	// BrokerShards partitions the shared broker: each session's topic
	// namespace pins to one shard (mq.ShardKey), so concurrent sessions
	// spread over the shard set instead of contending on one middleware
	// occupancy. 0 takes mq.DefaultShards; 1 reproduces the unsharded
	// broker. Single runs are timing-identical at any shard count.
	BrokerShards int
	// Cluster sizes the simulated platform.
	Cluster cluster.Config
	// Listen, when non-empty, starts a network transport listener on
	// the given "host:port" address (":0" picks a free port; see
	// Manager.ListenerAddr). Worker processes (cmd/ginflow-node) join
	// it over TCP and sessions submitted while workers are connected
	// run their agents out-of-process. Requires a distributed executor:
	// the centralized manager has no broker for the listener to front.
	Listen string
	// SSH / Mesos / EC2 tune the executors (zero values take defaults).
	SSH   executor.SSH
	Mesos executor.Mesos
	EC2   executor.EC2

	// FailureP / FailureT drive fault injection (§V-D): each service
	// invocation crashes its agent with probability FailureP after
	// FailureT model seconds (if the service is still running).
	FailureP float64
	FailureT float64
	// RestartDelay is the modelled cost of respawning a crashed agent
	// (default 2 model seconds).
	RestartDelay float64
	// MaxRecoveries bounds total respawns, a runaway guard (default 100000).
	MaxRecoveries int

	// Timeout bounds each session in real time (default 120 s);
	// overridable per submission with SubmitTimeout.
	Timeout time.Duration

	// CollectTrace records the enactment timeline (agent lifecycle,
	// invocations, transfers, adaptations, crashes) into Report.Events.
	// Live event streaming (Session.Events) works regardless.
	CollectTrace bool
	// TraceCap bounds each session's retained timeline to the newest N
	// events (ring buffer; drops are counted). 0 retains everything —
	// the historical behaviour.
	TraceCap int

	// MetricsAddr, when non-empty, serves the manager's observability
	// endpoints on the given "host:port" (":0" picks a free port; see
	// Manager.MetricsAddr): Prometheus text at /metrics, a JSON snapshot
	// at /metrics.json and net/http/pprof under /debug/pprof/.
	MetricsAddr string
	// Metrics selects the registry the manager's instruments resolve on
	// (nil takes the process-wide obs.Default()). A private registry
	// isolates one manager's model-time metrics — e.g. to compare two
	// same-seed virtual runs snapshot-for-snapshot.
	Metrics *obs.Registry

	// Journal configures the durable session journal (DESIGN.md
	// "Durability & recovery"): when Journal.Dir is set, every
	// distributed session writes through to an on-disk snapshot + delta
	// log and an unfinished session survives a Manager process crash —
	// a fresh Manager over the same directory resumes it with Recover.
	Journal journal.Config

	// Chaos drives the deterministic fault schedule (DESIGN.md "Fault
	// model & chaos harness"): seeded, replayable perturbation of
	// message delivery, service invocation, agent deployment and
	// journal I/O. The zero value disables every boundary.
	Chaos failure.ChaosConfig
	// Retry bounds the transient-fault retry loops run under Chaos
	// (invocation retries, deploy retries, journal write retries); the
	// zero value takes the failure package defaults.
	Retry failure.RetryConfig
}

func (c Config) withDefaults() Config {
	if c.Executor == "" {
		c.Executor = executor.KindSSH
	}
	if c.Broker == "" {
		c.Broker = mq.KindQueue
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = 2.0
	}
	if c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 100000
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	return c
}

// Report summarises one workflow run. Times are model seconds.
type Report struct {
	Workflow string
	Executor string
	Broker   string

	Tasks  int // main tasks
	Agents int // deployed agents (main + replacement)
	Nodes  int

	DeployTime float64
	ExecTime   float64
	TotalTime  float64

	Failures   int // observed injected crashes
	Recoveries int // respawned incarnations
	Messages   int64

	// DuplicatesSuppressed counts deliveries the agents' inbox sequence
	// protocol discarded as duplicates (chaos duplication, broker
	// redelivery, recovery replay overlap).
	DuplicatesSuppressed int64
	// EventsDropped counts enactment events lost on the session's lossy
	// live stream because a subscriber stopped draining.
	EventsDropped int64

	Adaptations []string // adaptation IDs that triggered
	Statuses    map[string]hoclflow.Status
	Results     map[string][]string // exit task -> rendered result atoms

	// Events is the enactment timeline (only when Config.CollectTrace or
	// SubmitTrace).
	Events []trace.Event
}

// String renders a compact single-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s [%s/%s] agents=%d deploy=%.2fs exec=%.2fs failures=%d recoveries=%d msgs=%d adaptations=%v",
		r.Workflow, r.Executor, r.Broker, r.Agents, r.DeployTime, r.ExecTime,
		r.Failures, r.Recoveries, r.Messages, r.Adaptations)
}

// Run executes one workflow on a throwaway environment and returns the
// run report: a compatibility wrapper over the long-lived Manager API
// (new manager, submit, wait).
func Run(ctx context.Context, def *workflow.Definition, services *agent.Registry, cfg Config) (*Report, error) {
	m, err := NewManager(cfg)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	s, err := m.Submit(ctx, def, services)
	if err != nil {
		return nil, err
	}
	return s.Wait(ctx)
}
