// Package core implements the GinFlow engine: the paper's contribution
// assembled. It translates a workflow definition to HOCL, provisions
// service agents on the simulated platform through an executor, wires
// them to a message broker and the shared space, supervises them
// (respawning crashed agents with log replay, §IV-B), and reports the
// run: deployment time, execution time, failures, recoveries, triggered
// adaptations and results — the quantities the paper's evaluation
// (§V) is built from.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
	"ginflow/internal/space"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// Config selects the run environment, mirroring the paper's CLI options
// ("executor, messaging framework, credentials, etc.", §IV-D).
type Config struct {
	// Executor: ssh, mesos or centralized (default ssh).
	Executor executor.Kind
	// Broker: activemq or kafka (default activemq). Ignored by the
	// centralized executor.
	Broker mq.Kind
	// Cluster sizes the simulated platform.
	Cluster cluster.Config
	// SSH / Mesos / EC2 tune the executors (zero values take defaults).
	SSH   executor.SSH
	Mesos executor.Mesos
	EC2   executor.EC2

	// FailureP / FailureT drive fault injection (§V-D): each service
	// invocation crashes its agent with probability FailureP after
	// FailureT model seconds (if the service is still running).
	FailureP float64
	FailureT float64
	// RestartDelay is the modelled cost of respawning a crashed agent
	// (default 2 model seconds).
	RestartDelay float64
	// MaxRecoveries bounds total respawns, a runaway guard (default 100000).
	MaxRecoveries int

	// Timeout bounds the whole run in real time (default 120 s).
	Timeout time.Duration

	// CollectTrace records the enactment timeline (agent lifecycle,
	// invocations, transfers, adaptations, crashes) into Report.Events.
	CollectTrace bool
}

func (c Config) withDefaults() Config {
	if c.Executor == "" {
		c.Executor = executor.KindSSH
	}
	if c.Broker == "" {
		c.Broker = mq.KindQueue
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = 2.0
	}
	if c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 100000
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	return c
}

// Report summarises one workflow run. Times are model seconds.
type Report struct {
	Workflow string
	Executor string
	Broker   string

	Tasks  int // main tasks
	Agents int // deployed agents (main + replacement)
	Nodes  int

	DeployTime float64
	ExecTime   float64
	TotalTime  float64

	Failures   int // observed injected crashes
	Recoveries int // respawned incarnations
	Messages   int64

	Adaptations []string // adaptation IDs that triggered
	Statuses    map[string]hoclflow.Status
	Results     map[string][]string // exit task -> rendered result atoms

	// Events is the enactment timeline (only when Config.CollectTrace).
	Events []trace.Event
}

// String renders a compact single-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s [%s/%s] agents=%d deploy=%.2fs exec=%.2fs failures=%d recoveries=%d msgs=%d adaptations=%v",
		r.Workflow, r.Executor, r.Broker, r.Agents, r.DeployTime, r.ExecTime,
		r.Failures, r.Recoveries, r.Messages, r.Adaptations)
}

// Run executes the workflow on the configured environment and returns
// the run report.
func Run(ctx context.Context, def *workflow.Definition, services *agent.Registry, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	if cfg.Executor == executor.KindCentralized {
		return runCentralized(ctx, def, services, cfg)
	}
	return runDistributed(ctx, def, services, cfg)
}

// runCentralized executes the whole workflow on a single HOCL
// interpreter over the global multiset — the §III semantics, useful as a
// baseline and for debugging (the paper's "centralized executor").
func runCentralized(ctx context.Context, def *workflow.Definition, services *agent.Registry, cfg Config) (*Report, error) {
	prog, err := def.TranslateCentral()
	if err != nil {
		return nil, err
	}
	clus := cluster.New(cfg.Cluster)
	clock := clus.Clock()
	rng := clus.Rand()

	eng := hocl.NewEngine()
	eng.Funcs.Register(hoclflow.FnInvoke, func(args []hocl.Atom) ([]hocl.Atom, error) {
		name, ok := args[0].(hocl.Str)
		if !ok {
			return nil, fmt.Errorf("invoke: bad service name %v", args[0])
		}
		svc, ok := services.Lookup(string(name))
		if !ok {
			return nil, fmt.Errorf("invoke: unknown service %q", name)
		}
		var params []hocl.Atom
		if len(args) > 1 {
			if l, ok := args[1].(hocl.List); ok {
				params = l
			}
		}
		clock.Sleep(svc.InvocationDuration(rng))
		res, err := svc.Invoke(params)
		if err != nil {
			return []hocl.Atom{hoclflow.AtomERROR}, nil
		}
		return []hocl.Atom{res}, nil
	})
	for name, fn := range prog.Funcs {
		eng.Funcs.Register(name, fn)
	}

	start := clock.Now()
	if err := eng.Reduce(prog.Global); err != nil {
		return nil, err
	}
	execTime := clock.Now() - start

	rep := &Report{
		Workflow: def.Name,
		Executor: string(executor.KindCentralized),
		Broker:   "none",
		Tasks:    def.TaskCount(),
		Agents:   0,
		Nodes:    len(clus.Nodes()),
		ExecTime: execTime, TotalTime: execTime,
		Statuses: map[string]hoclflow.Status{},
		Results:  map[string][]string{},
	}
	for _, id := range def.AllTaskIDs() {
		if sub := hoclflow.FindTaskSub(prog.Global, id); sub != nil {
			rep.Statuses[id] = hoclflow.StatusOf(sub)
		}
	}
	for _, exit := range def.Exits() {
		sub := hoclflow.FindTaskSub(prog.Global, exit)
		if sub == nil {
			continue
		}
		for _, a := range hoclflow.Results(sub) {
			rep.Results[exit] = append(rep.Results[exit], a.String())
		}
		if rep.Statuses[exit] != hoclflow.StatusCompleted {
			return rep, fmt.Errorf("core: workflow stalled: exit task %s is %v", exit, rep.Statuses[exit])
		}
	}
	for _, m := range prog.Global.Atoms() {
		if tp, ok := m.(hocl.Tuple); ok && len(tp) == 2 && tp[0].Equal(hoclflow.KeyTRIGGER) {
			if id, ok := tp[1].(hocl.Str); ok {
				rep.Adaptations = append(rep.Adaptations, string(id))
			}
		}
	}
	sort.Strings(rep.Adaptations)
	return rep, nil
}

// runDistributed provisions agents through the executor and runs the
// decentralised engine.
func runDistributed(ctx context.Context, def *workflow.Definition, services *agent.Registry, cfg Config) (*Report, error) {
	specs, err := def.TranslateAgents()
	if err != nil {
		return nil, err
	}
	exec, err := executorFor(cfg)
	if err != nil {
		return nil, err
	}
	clus := cluster.New(cfg.Cluster)
	clock := clus.Clock()
	broker, err := mq.NewBroker(cfg.Broker, clock)
	if err != nil {
		return nil, err
	}
	defer broker.Close()

	// The space consumes status updates; attach before any agent runs.
	sp := space.New()
	if err := sp.Attach(broker, space.DefaultTopic); err != nil {
		return nil, err
	}
	spaceCtx, stopSpace := context.WithCancel(context.Background())
	defer stopSpace()
	spaceFailed := make(chan error, 1)
	go func() {
		err := sp.Serve(spaceCtx, broker, space.DefaultTopic)
		if err != nil && spaceCtx.Err() == nil {
			spaceFailed <- err
		}
	}()

	// Deployment (§IV-C): claim resources, place agents.
	placements, deployTime, err := exec.Deploy(ctx, specs, clus)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, p := range placements {
			p.Node.Release()
		}
	}()

	nodeOf := map[string]*cluster.Node{}
	for _, p := range placements {
		nodeOf[p.Spec.Task.Name] = p.Node
	}

	injector := failure.New(cfg.FailureP, cfg.FailureT, clus.Rand())

	var recorder *trace.Recorder
	if cfg.CollectTrace {
		recorder = trace.NewRecorder(clock)
	}

	// Launch supervised agents. Every first incarnation subscribes
	// before any agent starts reducing: a fast entry task must not
	// publish results into the void (fatal on the volatile queue broker).
	sup := &supervisor{
		cluster: clus, broker: broker, services: services,
		injector: injector, placements: nodeOf,
		restartDelay: cfg.RestartDelay, maxRecoveries: cfg.MaxRecoveries,
		recorder: recorder,
	}
	firstIncarnations := make([]*agent.Agent, len(placements))
	for i, p := range placements {
		a := sup.newAgent(p, 0)
		if err := a.Subscribe(); err != nil {
			return nil, err
		}
		firstIncarnations[i] = a
	}

	agentsCtx, stopAgents := context.WithCancel(ctx)
	defer stopAgents()
	execStart := clock.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, len(placements))
	for i, p := range placements {
		wg.Add(1)
		go func(p executor.Placement, first *agent.Agent) {
			defer wg.Done()
			if err := sup.run(agentsCtx, p, first); err != nil && agentsCtx.Err() == nil {
				errCh <- err
			}
		}(p, firstIncarnations[i])
	}

	// Wait for the exit tasks to report completion in the space.
	waitErr := func() error {
		done := make(chan error, 1)
		go func() { done <- sp.WaitCompleted(ctx, def.Exits()) }()
		select {
		case err := <-done:
			return err
		case err := <-errCh:
			return fmt.Errorf("core: agent failed: %w", err)
		case err := <-spaceFailed:
			return fmt.Errorf("core: space failed: %w", err)
		}
	}()
	execTime := clock.Now() - execStart
	stopAgents()
	wg.Wait()

	rep := &Report{
		Workflow:   def.Name,
		Executor:   exec.Name(),
		Broker:     string(cfg.Broker),
		Tasks:      def.TaskCount(),
		Agents:     len(placements),
		Nodes:      len(clus.Nodes()),
		DeployTime: deployTime, ExecTime: execTime,
		TotalTime:  deployTime + execTime,
		Failures:   sup.failures(),
		Recoveries: sup.recoveries(),
		Messages:   broker.Published(),
		Statuses:   map[string]hoclflow.Status{},
		Results:    map[string][]string{},
	}
	rep.Adaptations = sp.Triggered()
	rep.Events = recorder.Events()
	for _, id := range def.AllTaskIDs() {
		rep.Statuses[id] = sp.Status(id)
	}
	for _, exit := range def.Exits() {
		for _, a := range sp.Results(exit) {
			rep.Results[exit] = append(rep.Results[exit], a.String())
		}
	}
	if waitErr != nil {
		return rep, fmt.Errorf("core: workflow did not complete: %w", waitErr)
	}
	return rep, nil
}

func executorFor(cfg Config) (executor.Executor, error) {
	switch cfg.Executor {
	case executor.KindSSH:
		ssh := cfg.SSH
		return &ssh, nil
	case executor.KindMesos:
		m := cfg.Mesos
		return &m, nil
	case executor.KindEC2:
		e := cfg.EC2
		return &e, nil
	default:
		return nil, fmt.Errorf("core: unknown distributed executor %q", cfg.Executor)
	}
}
