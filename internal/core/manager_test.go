package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/executor"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestManagerConcurrentMixedSessions multiplexes a mixed bag of
// workflows — diamonds, sequences and an adaptive diamond — over one
// manager and checks every per-run report independently: correct
// statuses and results, adaptation recorded only where declared, and no
// cross-run molecule leakage (each session's space holds exactly its own
// tasks).
func TestManagerConcurrentMixedSessions(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(8),
	})

	type runCase struct {
		name    string
		def     *workflow.Definition
		svc     *agent.Registry
		exits   []string
		adapted bool
	}
	var cases []runCase
	for i := 0; i < 3; i++ {
		cases = append(cases, runCase{
			name:  fmt.Sprintf("diamond-%d", i),
			def:   workflow.Diamond(workflow.DefaultDiamondSpec(2+i, 2, false)),
			svc:   diamondServices(nil),
			exits: []string{workflow.DiamondMergeName},
		})
	}
	for i := 0; i < 3; i++ {
		svc := agent.NewRegistry()
		svc.RegisterNoop(0.1, "s")
		cases = append(cases, runCase{
			name:  fmt.Sprintf("sequence-%d", i),
			def:   workflow.Sequence(3, "s", "in"),
			svc:   svc,
			exits: []string{"S3"},
		})
	}
	for i := 0; i < 2; i++ {
		spec := workflow.DefaultDiamondSpec(2, 2, false)
		def := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, false, "workalt")
		last, _ := def.TaskByID(workflow.LastMeshTask(spec))
		last.Service = "flaky"
		svc := diamondServices(nil)
		svc.RegisterFailing("flaky", 0.1)
		cases = append(cases, runCase{
			name:    fmt.Sprintf("adaptive-%d", i),
			def:     def,
			svc:     svc,
			exits:   []string{workflow.DiamondMergeName},
			adapted: true,
		})
	}

	sessions := make([]*Session, len(cases))
	for i, c := range cases {
		s, err := m.Submit(context.Background(), c.def, c.svc)
		if err != nil {
			t.Fatalf("%s: submit: %v", c.name, err)
		}
		sessions[i] = s
	}
	if got := m.Active(); got == 0 {
		t.Error("no active sessions after submits")
	}

	var wg sync.WaitGroup
	for i := range cases {
		wg.Add(1)
		go func(c runCase, s *Session) {
			defer wg.Done()
			rep, err := s.Wait(context.Background())
			if err != nil {
				t.Errorf("%s: wait: %v (report %v)", c.name, err, rep)
				return
			}
			for _, exit := range c.exits {
				if got := rep.Statuses[exit]; got != hoclflow.StatusCompleted {
					t.Errorf("%s: exit %s = %v", c.name, exit, got)
				}
			}
			if c.adapted != (len(rep.Adaptations) == 1) {
				t.Errorf("%s: adaptations = %v", c.name, rep.Adaptations)
			}
			if rep.Messages == 0 {
				t.Errorf("%s: no messages attributed to session", c.name)
			}
			// No cross-run molecule leakage: the session's space saw
			// exactly (a subset of) its own task IDs.
			own := map[string]bool{}
			for _, id := range c.def.AllTaskIDs() {
				own[id] = true
			}
			for _, name := range s.space.Names() {
				if !own[name] {
					t.Errorf("%s: foreign task %q leaked into session space", c.name, name)
				}
			}
		}(cases[i], sessions[i])
	}
	wg.Wait()

	if got := m.Active(); got != 0 {
		t.Errorf("active sessions after completion = %d", got)
	}
	// All sessions purged their namespaces: the shared broker retains no
	// per-session topic state.
	for _, s := range sessions {
		if topics := m.Broker().Topics(s.TopicNamespace()); len(topics) != 0 {
			t.Errorf("session %d left topics behind: %v", s.ID(), topics)
		}
	}
}

// TestManagerSessionIsolationMessages checks the per-session message
// accounting: two concurrent identical runs each see their own traffic,
// not the shared broker's global counter.
func TestManagerSessionIsolationMessages(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(6),
	})
	var handles []*Session
	for i := 0; i < 2; i++ {
		s, err := m.Submit(context.Background(), workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false)), diamondServices(nil))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, s)
	}
	var counts []int64
	for _, s := range handles {
		rep, err := s.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, rep.Messages)
	}
	total := m.Broker().Published()
	if counts[0]+counts[1] != total {
		t.Errorf("per-session messages %v do not sum to broker total %d", counts, total)
	}
}

// TestManagerCancelReleasesResources cancels a long run mid-flight: Wait
// must return an ErrCancelled error carrying the cause, node slots must
// return to the pool and the session's broker topics must be purged.
func TestManagerCancelReleasesResources(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindLog, // log broker: purge must also drop retained logs
		Cluster:  fastCluster(4),
	})
	def := workflow.Sequence(4, "slow", "in")
	svc := agent.NewRegistry()
	svc.RegisterNoop(1e5, "slow") // 1e5 model s ≈ 5 real s per task: cancel lands mid-run

	s, err := m.Submit(context.Background(), def, svc)
	if err != nil {
		t.Fatal(err)
	}
	// Let deployment finish and the first agent start.
	deadline := time.Now().Add(10 * time.Second)
	for m.Broker().PublishedPrefix(s.TopicNamespace()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never published")
		}
		time.Sleep(time.Millisecond)
	}

	cause := errors.New("operator intervention")
	s.Cancel(cause)
	rep, err := s.Wait(context.Background())
	if err == nil {
		t.Fatalf("cancelled session completed: %v", rep)
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("err = %v, want wrapped cause", err)
	}

	for _, n := range m.Cluster().Nodes() {
		if n.InUse() != 0 {
			t.Errorf("node %v still holds %d slots after cancel", n, n.InUse())
		}
	}
	if topics := m.Broker().Topics(s.TopicNamespace()); len(topics) != 0 {
		t.Errorf("topics not purged after cancel: %v", topics)
	}
	if got := m.Active(); got != 0 {
		t.Errorf("active = %d after cancel", got)
	}
}

// TestManagerEventsStream subscribes to a session's live event stream
// and checks it delivers a completed-task event for every task, then
// closes.
func TestManagerEventsStream(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(4),
	})
	def := workflow.Diamond(workflow.DefaultDiamondSpec(3, 3, false))
	s, err := m.Submit(context.Background(), def, diamondServices(nil))
	if err != nil {
		t.Fatal(err)
	}
	completed := map[string]bool{}
	var invoked int
	for e := range s.Events() {
		switch e.Kind {
		case trace.TaskCompleted:
			completed[e.Task] = true
		case trace.ServiceInvoked:
			invoked++
		}
	}
	if _, err := s.Wait(context.Background()); err != nil {
		t.Fatalf("wait: %v", err)
	}
	for _, id := range def.AllTaskIDs() {
		if !completed[id] {
			t.Errorf("no task-completed event for %s", id)
		}
	}
	if invoked != def.TaskCount() {
		t.Errorf("service-invoked events = %d, want %d", invoked, def.TaskCount())
	}
	// Subscribing after completion yields an already-closed channel.
	if _, open := <-s.Events(); open {
		t.Error("post-completion subscription delivered an event")
	}
	// Live streaming must not have retained a timeline (no SubmitTrace).
	if rep, _ := s.Wait(context.Background()); len(rep.Events) != 0 {
		t.Errorf("Report.Events retained %d events without SubmitTrace", len(rep.Events))
	}
}

// TestManagerSubmitTraceRetainsTimeline: SubmitTrace keeps Report.Events
// while streaming still works.
func TestManagerSubmitTraceRetainsTimeline(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(2),
	})
	svc := agent.NewRegistry()
	svc.RegisterNoop(0.1, "s")
	s, err := m.Submit(context.Background(), workflow.Sequence(2, "s", "in"), svc, SubmitTrace())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) == 0 {
		t.Error("SubmitTrace retained no events")
	}
}

// TestManagerSubmitUnknownService: submissions referencing unregistered
// services fail fast with ErrUnknownService, before any deployment.
func TestManagerSubmitUnknownService(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(2),
	})
	def := workflow.Sequence(2, "s", "in")
	def.Tasks[1].Service = "missing"
	svc := agent.NewRegistry()
	svc.RegisterNoop(0, "s")
	_, err := m.Submit(context.Background(), def, svc)
	if !errors.Is(err, ErrUnknownService) {
		t.Errorf("err = %v, want ErrUnknownService", err)
	}
	// Replacement-task services are validated too.
	spec := workflow.DefaultDiamondSpec(2, 2, false)
	adef := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, false, "unregistered-alt")
	reg := agent.NewRegistry()
	reg.RegisterNoop(0.1, "split", "work", "merge")
	if _, err := m.Submit(context.Background(), adef, reg); !errors.Is(err, ErrUnknownService) {
		t.Errorf("replacement err = %v, want ErrUnknownService", err)
	}
}

// TestManagerStalledTimeout: a session that cannot finish inside its
// (per-submit) timeout fails with ErrStalled and still yields a partial
// report.
func TestManagerStalledTimeout(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(2),
	})
	svc := agent.NewRegistry()
	svc.RegisterNoop(1e6, "slow") // 1e6 model s = 50 real s at the test scale
	s, err := m.Submit(context.Background(), workflow.Sequence(2, "slow", "in"), svc,
		SubmitTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Wait(context.Background())
	if err == nil {
		t.Fatal("stalled session reported success")
	}
	if !errors.Is(err, ErrStalled) {
		t.Errorf("err = %v, want ErrStalled", err)
	}
	if rep == nil {
		t.Error("no partial report on stall")
	}
}

// TestManagerClosedRejectsSubmit: Close drains active sessions and
// subsequent submissions fail with ErrManagerClosed.
func TestManagerClosedRejectsSubmit(t *testing.T) {
	m, err := NewManager(Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := agent.NewRegistry()
	svc.RegisterNoop(1e5, "slow")
	s, err := m.Submit(context.Background(), workflow.Sequence(2, "slow", "in"), svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := s.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Errorf("session err after close = %v, want ErrCancelled", err)
	}
	if _, err := m.Submit(context.Background(), workflow.Sequence(1, "slow", "in"), svc); !errors.Is(err, ErrManagerClosed) {
		t.Errorf("submit after close = %v, want ErrManagerClosed", err)
	}
}

// TestManagerCentralizedSessions: the centralized executor multiplexes
// through the same Manager surface (sessions just run on private
// interpreters).
func TestManagerCentralizedSessions(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindCentralized,
		Cluster:  fastCluster(2),
	})
	svc := agent.NewRegistry()
	svc.RegisterNoop(0.1, "s")
	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := m.Submit(context.Background(), workflow.Sequence(2, "s", "in"), svc)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	for _, s := range sessions {
		rep, err := s.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Statuses["S2"] != hoclflow.StatusCompleted {
			t.Errorf("S2 = %v", rep.Statuses["S2"])
		}
	}
}

// TestManagerRunCompatWrapper: the one-shot Run path still behaves like
// the original engine entry point.
func TestManagerRunCompatWrapper(t *testing.T) {
	rep := runDiamond(t, 2, 2, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(4),
	})
	if rep.Agents != 2*2+2 {
		t.Errorf("agents = %d", rep.Agents)
	}
}

// TestManagerHandleStatusLive polls Status mid-run: statuses must come
// from the session's own space and converge to all-completed.
func TestManagerHandleStatusLive(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(4),
	})
	def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false))
	s, err := m.Submit(context.Background(), def, diamondServices(nil))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); len(st) != len(def.AllTaskIDs()) {
		t.Errorf("status map size = %d, want %d", len(st), len(def.AllTaskIDs()))
	}
	if _, err := s.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for id, st := range s.Status() {
		if st != hoclflow.StatusCompleted {
			t.Errorf("task %s = %v after completion", id, st)
		}
	}
}

// TestCancelledSessionLeavesNoTopicsOnAnyShard is the sharded-broker
// namespace-cleanup regression test: sessions pin to broker shards by
// namespace hash, so teardown must purge the session's topics from
// whichever shard holds them. Several concurrent sessions (spread over a
// 4-shard broker) are cancelled mid-run; afterwards no shard may retain
// any topic of any session.
func TestCancelledSessionLeavesNoTopicsOnAnyShard(t *testing.T) {
	m := newTestManager(t, Config{
		Executor:     executor.KindSSH,
		Broker:       mq.KindLog, // retained logs are the easiest state to leak
		BrokerShards: 4,
		Cluster:      fastCluster(8),
	})
	broker := m.Broker()
	if broker.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", broker.ShardCount())
	}

	var sessions []*Session
	for i := 0; i < 6; i++ {
		// Long diamonds so cancellation lands mid-run.
		def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 30, false))
		s, err := m.Submit(context.Background(), def, diamondServices(nil))
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	// Let traffic flow so every session has created topics on its shard.
	deadline := time.Now().Add(5 * time.Second)
	for _, s := range sessions {
		for broker.PublishedPrefix(s.TopicNamespace()) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("session %s produced no traffic", s.TopicNamespace())
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, s := range sessions {
		s.Cancel(nil)
	}
	for _, s := range sessions {
		if _, err := s.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
			t.Errorf("wait after cancel: %v", err)
		}
	}
	for _, s := range sessions {
		ns := s.TopicNamespace()
		for shard := 0; shard < broker.ShardCount(); shard++ {
			if got := broker.ShardTopics(shard, ns); len(got) != 0 {
				t.Errorf("shard %d retains topics of cancelled session %s: %v", shard, ns, got)
			}
		}
		if got := broker.Topics(ns); len(got) != 0 {
			t.Errorf("broker retains topics of cancelled session %s: %v", ns, got)
		}
	}
}
