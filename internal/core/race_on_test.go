//go:build race

package core

// raceEnabled reports that the race detector is compiled in; the
// virtual-clock scale tests skip under it (10k-goroutine runs blow the
// race job's time budget without adding coverage the smaller
// determinism tests lack).
const raceEnabled = true
