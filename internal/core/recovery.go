package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/executor"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/journal"
	"ginflow/internal/mq"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// This file implements crash recovery: a fresh Manager over the same
// journal directory rebuilds each unfinished session from its snapshot
// + delta log and re-enters the supervisor loop without re-executing
// completed work (DESIGN.md "Durability & recovery").
//
// Replay reuses the live machinery end to end: journaled payloads fold
// into the session's space through the same full-snapshot/STATDELTA
// apply path (with the incremental MultisetHash verification) that
// consumed them the first time, and the rebuilt per-task states seed
// the replacement agents. A task whose journaled state carries RES
// restarts inert on the invocation path — its IN/PAR were consumed by
// the recorded gw_setup/gw_call firings — so its service is not invoked
// again; a task journaled mid-flight re-invokes, exactly as the paper's
// single-agent recovery does.
//
// Rebuilding state is not enough: messages in flight at the crash are
// gone with the broker. recoverSpecs therefore reconciles the wiring —
// any task still waiting on a source it has not heard from is re-added
// to that source's DST set (gw_send then re-fires once the source holds
// a result; duplicate PASS deliveries are ignored by gw_recv, the
// paper's own idempotence), and a triggered adaptation whose ADAPT
// marker was lost in flight is re-injected at the destination so
// mv_src can still rewire it.

// Recover scans the journal for unfinished sessions, rebuilds each one
// and resumes it. The returned sessions behave like freshly submitted
// ones (Wait/Status/Events/Cancel); each emits a SessionRecovered event
// on its stream and on the manager bus. Finished sessions found in the
// journal are reclaimed. Service implementations cannot be persisted,
// so the caller supplies the registry again; opts apply to every
// recovered session on top of its journaled submission config. ctx
// bounds all recovered sessions, like the submitting context does for
// Submit. Sessions whose journal cannot be rebuilt are skipped and
// reported in the joined error alongside the successfully recovered
// ones.
func (m *Manager) Recover(ctx context.Context, services *agent.Registry, opts ...SubmitOption) ([]*Session, error) {
	if m.journal == nil {
		return nil, ErrNoJournal
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return nil, ErrManagerClosed
	}
	ids, err := m.journal.SessionIDs()
	if err != nil {
		return nil, err
	}
	var sessions []*Session
	var errs []error
	for _, id := range ids {
		st, err := m.journal.ReadSession(id)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if st.Done {
			m.journal.RemoveSession(id)
			continue
		}
		s, err := m.recoverSession(ctx, st, services, opts)
		if err != nil {
			errs = append(errs, fmt.Errorf("core: recover session %d: %w", id, err))
			continue
		}
		sessions = append(sessions, s)
	}
	return sessions, errors.Join(errs...)
}

// recoverSession rebuilds one journaled session and starts it.
func (m *Manager) recoverSession(ctx context.Context, st *journal.SessionState, services *agent.Registry, opts []SubmitOption) (*Session, error) {
	def, err := workflow.FromJSON(st.Meta.Workflow)
	if err != nil {
		return nil, err
	}
	if err := checkServices(def, services); err != nil {
		return nil, err
	}
	sub := SubmitConfig{
		Timeout:      time.Duration(st.Meta.TimeoutNS),
		CollectTrace: st.Meta.CollectTrace,
		FailureP:     st.Meta.FailureP,
		FailureT:     st.Meta.FailureT,
		Executor:     executor.Kind(st.Meta.Executor),
	}
	for _, opt := range opts {
		opt(&sub)
	}
	if sub.Timeout <= 0 {
		sub.Timeout = m.cfg.Timeout
	}
	exec, err := m.sessionExecutor(sub.Executor)
	if err != nil {
		return nil, err
	}
	if exec == nil {
		return nil, fmt.Errorf("core: journaled session has no distributed executor")
	}

	runCtx, cancel := context.WithCancelCause(ctx)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel(ErrManagerClosed)
		return nil, ErrManagerClosed
	}
	if _, active := m.active[st.Meta.ID]; active {
		m.mu.Unlock()
		cancel(ErrCancelled)
		return nil, fmt.Errorf("core: session %d is still active", st.Meta.ID)
	}
	s := newSession(m, st.Meta.ID, def, services, sub)
	s.cancel = cancel
	s.exec = exec
	s.recovered = true
	if st.Meta.ID > m.nextID {
		m.nextID = st.Meta.ID
	}
	m.active[s.id] = s
	m.wg.Add(1)
	m.mu.Unlock()

	fail := func(err error) (*Session, error) {
		m.mu.Lock()
		delete(m.active, s.id)
		m.mu.Unlock()
		m.wg.Done()
		cancel(ErrCancelled)
		return nil, err
	}

	// Replay: fold the snapshot and every status record after it into
	// the fresh space through the live apply path (full snapshots
	// replace, deltas patch under fingerprint verification).
	for _, payload := range st.Payloads {
		if len(payload) == 0 {
			continue
		}
		s.space.ApplyMessage(mq.Message{Atoms: payload})
	}
	// Replay advanced the space's per-task version gate to the journaled
	// (incarnation, push) high-water marks; the resumed agents restart at
	// incarnation 0 and push 1, so the gate must reopen or every live
	// push would be dropped as stale.
	s.space.ResetVersions()

	// Re-seed the fresh broker's replay logs with the journaled inbox
	// history: an agent that crashes after resume can still replay the
	// messages its pre-crash incarnations consumed in the old process.
	if len(st.Inbox) > 0 {
		if lr, ok := m.broker.(mq.LogRestorer); ok {
			byTopic := map[string][]mq.Message{}
			var order []string
			for _, rec := range st.Inbox {
				if _, seen := byTopic[rec.Topic]; !seen {
					order = append(order, rec.Topic)
				}
				byTopic[rec.Topic] = append(byTopic[rec.Topic], mq.Message{Topic: rec.Topic, Atoms: rec.Atoms})
			}
			for _, topic := range order {
				lr.RestoreLog(topic, byTopic[topic])
			}
		}
	}

	// Resume write-through: the rebuilt state is checkpointed into a
	// fresh segment before the session runs, superseding the replayed
	// segments; the inbox history is re-journaled into the fresh head.
	meta, err := sessionMeta(s)
	if err != nil {
		return fail(err)
	}
	jw, err := m.journal.ResumeSession(meta, s.space.Snapshot().Atoms(), st.Inbox)
	if err != nil {
		return fail(err)
	}
	s.jw = jw

	s.recorder.Record(trace.SessionRecovered, "", 0,
		fmt.Sprintf("replayed %d status records", st.StatusRecords))
	m.cluster.Clock().Go(func() {
		defer m.wg.Done()
		s.run(runCtx)
	})
	return s, nil
}

// recoverSpecs rewrites the translated agent specs of a recovered
// session: journaled task states replace the pristine template locals
// (keeping the template's NAME and rules — status pushes strip both),
// lost in-flight deliveries are compensated by re-adding a destination
// to its source's DST set whenever the destination still waits on that
// source, and a triggered adaptation whose ADAPT marker never reached
// its destination is re-injected there. states maps task name to its
// rebuilt sub-solution (mutation-safe snapshots); triggered lists the
// adaptation IDs whose TRIGGER markers the journal preserved.
func recoverSpecs(def *workflow.Definition, specs []workflow.AgentSpec, states map[string]*hocl.Solution, triggered []string) error {
	plans, err := def.AdaptationPlans()
	if err != nil {
		return err
	}
	triggeredSet := map[string]bool{}
	for _, id := range triggered {
		triggeredSet[id] = true
	}

	// Active tasks participate in completion: every main task, plus the
	// replacement tasks of triggered adaptations. Untriggered
	// replacements stay idle and must not be wired into anyone's DST.
	active := map[string]bool{}
	for _, t := range def.Tasks {
		active[t.ID] = true
	}
	for i := range plans {
		if !triggeredSet[plans[i].ID] {
			continue
		}
		for _, r := range plans[i].ReplacementIDs {
			active[r] = true
		}
	}

	// Seed each agent's local solution from its journaled state.
	local := map[string]*hocl.Solution{}
	for i := range specs {
		name := specs[i].Task.Name
		if st, ok := states[name]; ok {
			specs[i].Local = seedLocal(specs[i].Local, st)
		}
		local[name] = specs[i].Local
	}

	// Effective pending-source sets: for the destination of a triggered
	// adaptation whose mv_src has not applied yet (its SRC still lists a
	// faulty final), ADAPT is re-injected and the post-mv_src rewrite is
	// anticipated, so the reconciliation below wires the replacement
	// finals that will feed it.
	pending := map[string][]string{}
	for name, sol := range local {
		if active[name] {
			pending[name] = hoclflow.PendingSources(sol)
		}
	}
	for i := range plans {
		p := &plans[i]
		if !triggeredSet[p.ID] {
			continue
		}
		dest := p.Destination
		destLocal, ok := local[dest]
		if !ok {
			continue
		}
		if !intersects(pending[dest], p.FaultyFinals) {
			// The journaled SRC no longer lists a faulty final: mv_src
			// already applied before the crash. seedLocal re-armed the
			// one-shot rule from the pristine template, and a faulty task
			// journaled mid-flight will re-invoke, fail again and
			// re-broadcast ADAPT — letting the re-armed rule re-fire would
			// wipe an IN list that may already hold consumed replacement
			// results the (retired) senders will never re-send, stalling
			// the destination forever. Disarm it.
			removeRule(destLocal, hoclflow.MvSrcRuleName(p.ID))
			continue
		}
		destLocal.Add(hoclflow.AdaptMarker(p.ID))
		pending[dest] = rewriteSources(pending[dest], p.FaultyFinals, p.ReplacementFinals)
	}

	// Wiring reconciliation: any active task still waiting on a source
	// must be in that source's DST set — the crash may have swallowed
	// the PASS message after the source retired the edge. Re-sending to
	// a task that already consumed the dependency is the protocol's
	// no-op.
	for name, srcs := range pending {
		for _, src := range srcs {
			srcLocal, ok := local[src]
			if !ok || src == name {
				continue
			}
			addDestination(srcLocal, name)
		}
	}
	return nil
}

// seedLocal rebuilds an agent-local solution from a journaled task
// state: the template's NAME atom and rules (stripped from status
// pushes) wrap the recorded data atoms. One-shot rules consumed by the
// recorded firings cannot re-fire: their trigger atoms (IN for
// gw_setup, PAR for gw_call) were consumed by those same firings, which
// is what keeps completed services from being invoked again.
func seedLocal(template *hocl.Solution, state *hocl.Solution) *hocl.Solution {
	var atoms []hocl.Atom
	if nameTuple, idx := template.FindTuple(hoclflow.KeyNAME); idx >= 0 {
		atoms = append(atoms, nameTuple)
	}
	atoms = append(atoms, state.Atoms()...)
	for _, r := range template.Rules() {
		atoms = append(atoms, r)
	}
	return hocl.NewSolution(atoms...)
}

// removeRule strips the named rule atom from a local solution. Recovery
// uses it to disarm one-shot adaptation rules whose firing is already
// reflected in the journaled state: seedLocal re-arms every template
// rule, which is correct for the gateway rules (their trigger atoms
// were consumed with them) but not for mv_src, whose trigger — a live
// ADAPT marker — can arrive again after resume.
func removeRule(sol *hocl.Solution, name string) {
	for i, a := range sol.Atoms() {
		if r, ok := a.(*hocl.Rule); ok && r.Name == name {
			sol.RemoveIndices([]int{i})
			return
		}
	}
}

// addDestination ensures the local solution's DST set contains dst.
func addDestination(sol *hocl.Solution, dst string) {
	tp, idx := sol.FindTuple(hoclflow.KeyDST)
	if idx < 0 || len(tp) != 2 {
		sol.Add(hocl.Tuple{hoclflow.KeyDST, hocl.NewSolution(hocl.Ident(dst))})
		return
	}
	inner, ok := tp[1].(*hocl.Solution)
	if !ok {
		return
	}
	if !inner.Contains(hocl.Ident(dst)) {
		inner.Add(hocl.Ident(dst))
	}
}

func intersects(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// rewriteSources anticipates mv_src: faulty finals out, replacement
// finals in (deduplicated, order-preserving).
func rewriteSources(srcs, remove, add []string) []string {
	removeSet := map[string]bool{}
	for _, r := range remove {
		removeSet[r] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, s := range srcs {
		if removeSet[s] || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	for _, a := range add {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
