package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/journal"
	"ginflow/internal/mq"
	"ginflow/internal/obs"
	"ginflow/internal/trace"
	"ginflow/internal/transport"
	"ginflow/internal/workflow"
)

// Sentinel errors of the Manager API, matchable with errors.Is.
var (
	// ErrStalled reports a session that did not complete inside its
	// timeout: some exit task never reached the completed status.
	ErrStalled = errors.New("workflow stalled")
	// ErrCancelled reports a session stopped by Session.Cancel (or by
	// cancellation of the submitting context).
	ErrCancelled = errors.New("workflow cancelled")
	// ErrUnknownService reports a submission referencing a service the
	// registry cannot resolve; Submit fails fast instead of deploying
	// agents doomed to die mid-run.
	ErrUnknownService = errors.New("unknown service")
	// ErrManagerClosed reports a submission to a closed manager.
	ErrManagerClosed = errors.New("manager closed")
	// ErrNoBroker reports a distributed session submitted to a manager
	// built without a broker (a centralized-executor manager): the
	// per-session executor override can only narrow to centralized, not
	// widen to distributed.
	ErrNoBroker = errors.New("manager has no broker")
	// ErrNoJournal reports a Recover call on a manager built without a
	// journal directory.
	ErrNoJournal = errors.New("manager has no journal")
	// ErrVirtualListen reports a Listen address configured together with
	// the virtual clock: out-of-process workers live on wall-clock time
	// and cannot take part in a discrete-event schedule, so TCP mode
	// requires the real clock.
	ErrVirtualListen = errors.New("transport listener requires the real clock")
)

// Manager is the long-lived engine: it owns one simulated platform, one
// message broker and one executor for its whole lifetime and multiplexes
// concurrent workflow sessions over them — the deploy-once/execute-many
// shape of decentralised orchestration services, where the paper's
// engine enacts one workflow per invocation. Each session gets a
// distinct topic namespace on the shared broker ("wf<id>."), so the
// molecules of concurrent runs never cross.
type Manager struct {
	cfg     Config
	cluster *cluster.Cluster
	broker  mq.Broker
	exec    executor.Executor // nil for the centralized executor
	journal *journal.Journal  // nil without Config.Journal.Dir
	// server is the network transport listener fronting the shared
	// broker (nil without Config.Listen): worker processes join it and
	// host sessions' agents out-of-process.
	server *transport.Server
	events *hub[SessionEvent]
	// chaos is the manager-wide deterministic fault schedule (nil when
	// Config.Chaos is disabled); it is shared by the broker, the journal
	// writers and every session's agents so one seed replays one run.
	chaos *failure.Schedule
	// reg is the manager's metrics registry; met its resolved
	// instruments; metricsSrv the HTTP endpoint (nil without
	// Config.MetricsAddr).
	reg        *obs.Registry
	met        *coreMetrics
	metricsSrv *obs.Server

	// inboxJournals dispatches the broker's publish observer to the
	// active sessions' inbox write-through callbacks. Non-nil only when
	// the broker is log-backed and a journal is configured.
	inboxMu       sync.RWMutex
	inboxJournals map[int64]func(mq.Message)

	mu     sync.Mutex
	closed bool
	nextID int64
	active map[int64]*Session
	wg     sync.WaitGroup
}

// NewManager builds a manager from the config (zero values take
// defaults). The cluster, broker and executor live until Close. With
// Config.Journal.Dir set the journal directory is opened (created if
// absent) and new session IDs are allocated past any journaled ones, so
// a restarted manager never collides with the sessions it may later
// Recover.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	clus := cluster.New(cfg.Cluster)
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	cfg.Journal.Metrics = reg
	var chaos *failure.Schedule
	if cfg.Chaos.Enabled() {
		chaos = failure.NewSchedule(cfg.Chaos)
		// Backoff and injected delays sleep on the model clock, so chaos
		// runs at the same accelerated scale as everything else.
		chaos.SetSleeper(clus.Clock().Sleep)
		chaos.SetMetrics(reg)
		cfg.Journal.Chaos = chaos
		cfg.Journal.Retry = cfg.Retry
	}
	m := &Manager{
		cfg:     cfg,
		cluster: clus,
		chaos:   chaos,
		reg:     reg,
		active:  map[int64]*Session{},
		events:  newHub[SessionEvent](managerEventBuffer),
	}
	m.met = newCoreMetrics(m, reg)
	if cfg.Executor != executor.KindCentralized {
		exec, err := executorFor(cfg, cfg.Executor)
		if err != nil {
			return nil, err
		}
		broker, err := mq.NewBrokerSharded(cfg.Broker, m.cluster.Clock(), cfg.BrokerShards)
		if err != nil {
			return nil, err
		}
		m.exec = exec
		m.broker = broker
		if bm, ok := broker.(interface{ SetMetrics(*obs.Registry) }); ok {
			bm.SetMetrics(reg)
		}
		if chaos != nil {
			if ch, ok := broker.(mq.ChaosHost); ok {
				ch.SetChaos(chaos)
			}
		}
	}
	if cfg.Listen != "" {
		if m.broker == nil {
			return nil, fmt.Errorf("core: Listen %q: %w", cfg.Listen, ErrNoBroker)
		}
		if clus.Clock().Virtual() {
			// Worker processes share real wall-clock time with the
			// manager but cannot take part in its discrete-event
			// schedule, so TCP mode keeps the real clock (see DESIGN.md
			// "Virtual time").
			return nil, fmt.Errorf("core: Listen %q: %w", cfg.Listen, ErrVirtualListen)
		}
		srv, err := transport.Listen(cfg.Listen, transport.ServerConfig{Broker: m.broker, Chaos: chaos})
		if err != nil {
			return nil, err
		}
		m.server = srv
	}
	if cfg.Journal.Enabled() {
		j, err := journal.Open(cfg.Journal)
		if err != nil {
			return nil, err
		}
		ids, err := j.SessionIDs()
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if id > m.nextID {
				m.nextID = id
			}
		}
		m.journal = j
		// Inbox write-through needs to see every direct-topic publish;
		// only the log broker exposes the observer hook (the queue broker
		// offers no replay to restore anyway).
		if oh, ok := m.broker.(mq.ObserverHost); ok {
			m.inboxJournals = map[int64]func(mq.Message){}
			oh.SetPublishObserver(func(msg mq.Message) {
				m.inboxMu.RLock()
				for _, fn := range m.inboxJournals {
					fn(msg)
				}
				m.inboxMu.RUnlock()
			})
		}
	}
	if cfg.MetricsAddr != "" {
		srv, err := obs.Serve(cfg.MetricsAddr, reg)
		if err != nil {
			return nil, fmt.Errorf("core: metrics listener %q: %w", cfg.MetricsAddr, err)
		}
		m.metricsSrv = srv
	}
	return m, nil
}

// registerInboxJournal attaches one session's inbox write-through
// callback to the broker's publish observer; a no-op when the manager
// has no observer hook (queue broker or no journal).
func (m *Manager) registerInboxJournal(id int64, fn func(mq.Message)) {
	if m.inboxJournals == nil {
		return
	}
	m.inboxMu.Lock()
	m.inboxJournals[id] = fn
	m.inboxMu.Unlock()
}

func (m *Manager) unregisterInboxJournal(id int64) {
	if m.inboxJournals == nil {
		return
	}
	m.inboxMu.Lock()
	delete(m.inboxJournals, id)
	m.inboxMu.Unlock()
}

// Chaos exposes the manager's fault schedule (nil when Config.Chaos is
// disabled); tests and tooling read its per-boundary injection counts.
func (m *Manager) Chaos() *failure.Schedule { return m.chaos }

// Metrics exposes the manager's metrics registry (Config.Metrics, or
// the process-wide default when none was configured).
func (m *Manager) Metrics() *obs.Registry { return m.reg }

// MetricsAddr returns the metrics endpoint's bound address, resolving a
// ":0" Config.MetricsAddr to the picked port. Empty when the manager
// serves no metrics endpoint.
func (m *Manager) MetricsAddr() string {
	if m.metricsSrv == nil {
		return ""
	}
	return m.metricsSrv.Addr()
}

// ListenerAddr returns the transport listener's bound address — the
// dial target for ginflow-node workers, resolving a ":0" Config.Listen
// to the picked port. Empty when the manager has no listener.
func (m *Manager) ListenerAddr() string {
	if m.server == nil {
		return ""
	}
	return m.server.Addr()
}

// ConnectedNodes reports how many worker processes have joined the
// transport listener (0 without one). Node identities persist across
// connection drops, so a briefly-partitioned worker still counts.
func (m *Manager) ConnectedNodes() int {
	if m.server == nil {
		return 0
	}
	return m.server.NodeCount()
}

// EventsDropped reports how many merged-bus events were lost to slow
// consumers of Manager.Events.
func (m *Manager) EventsDropped() int64 { return m.events.droppedCount() }

// managerEventBuffer sizes the merged event bus's per-subscriber
// buffer: it must absorb bursts from many concurrent sessions, and like
// the per-session hubs it is lossy under backpressure.
const managerEventBuffer = 4096

// SessionEvent is one enactment event stamped with the session that
// emitted it — the element type of the manager-level merged event bus.
type SessionEvent struct {
	// SessionID identifies the emitting session.
	SessionID int64
	trace.Event
}

// Events returns a live merged stream of every session's enactment
// events, each stamped with its session ID — the observation point for
// dashboard-style consumers that watch the whole manager rather than
// one handle. Recovery announces each resumed session here with a
// SessionRecovered event. Delivery is lossy under backpressure, like
// Session.Events; the channel closes when the manager closes.
func (m *Manager) Events() <-chan SessionEvent {
	return m.events.subscribe()
}

// Journal exposes the manager's journal (nil when journaling is
// disabled); tests and tooling inspect it.
func (m *Manager) Journal() *journal.Journal { return m.journal }

// Cluster exposes the shared platform (tests and benchmarks assert on
// slot accounting).
func (m *Manager) Cluster() *cluster.Cluster { return m.cluster }

// Broker exposes the shared broker (nil for centralized managers).
func (m *Manager) Broker() mq.Broker { return m.broker }

// Active returns the number of sessions currently running.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// SubmitConfig tunes one submission; built from SubmitOptions over the
// manager's defaults.
type SubmitConfig struct {
	// Timeout bounds the session in real time (default Config.Timeout).
	Timeout time.Duration
	// CollectTrace retains the full event timeline in Report.Events for
	// this session (default Config.CollectTrace).
	CollectTrace bool
	// FailureP / FailureT override the manager's fault injection for
	// this session.
	FailureP, FailureT float64
	// Executor overrides the manager's executor for this session ("" =
	// manager default). Centralized narrows a distributed manager to a
	// single-interpreter debug run; a distributed kind on a distributed
	// manager swaps the deployment backend; a distributed kind on a
	// centralized manager fails with ErrNoBroker.
	Executor executor.Kind
}

// SubmitOption tunes one submission.
type SubmitOption func(*SubmitConfig)

// SubmitTimeout bounds the session in real time.
func SubmitTimeout(d time.Duration) SubmitOption {
	return func(c *SubmitConfig) { c.Timeout = d }
}

// SubmitTrace retains the session's full event timeline in
// Report.Events (live streaming via Session.Events needs no option).
func SubmitTrace() SubmitOption {
	return func(c *SubmitConfig) { c.CollectTrace = true }
}

// SubmitFailureInjection overrides the manager's fault-injection
// parameters (§V-D) for this session.
func SubmitFailureInjection(p, t float64) SubmitOption {
	return func(c *SubmitConfig) { c.FailureP = p; c.FailureT = t }
}

// SubmitExecutor overrides the manager's executor for this session —
// e.g. a centralized debug run inside a distributed manager, or an SSH
// session on a Mesos manager. A distributed kind requires the manager
// to have a broker (ErrNoBroker otherwise).
func SubmitExecutor(k executor.Kind) SubmitOption {
	return func(c *SubmitConfig) { c.Executor = k }
}

// Submit starts a workflow session and returns its handle immediately;
// deployment and enactment proceed in the background. The submitting
// context bounds the whole session: cancelling it cancels the session.
// Submit validates the service bindings up front — a task or replacement
// task referencing a service the registry cannot resolve fails with
// ErrUnknownService before anything deploys.
func (m *Manager) Submit(ctx context.Context, def *workflow.Definition, services *agent.Registry, opts ...SubmitOption) (*Session, error) {
	if def == nil {
		return nil, fmt.Errorf("core: nil workflow definition")
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return nil, ErrManagerClosed
	}
	if err := checkServices(def, services); err != nil {
		return nil, err
	}

	sub := SubmitConfig{
		Timeout:      m.cfg.Timeout,
		CollectTrace: m.cfg.CollectTrace,
		FailureP:     m.cfg.FailureP,
		FailureT:     m.cfg.FailureT,
	}
	for _, opt := range opts {
		opt(&sub)
	}
	if sub.Timeout <= 0 {
		sub.Timeout = m.cfg.Timeout
	}

	exec, err := m.sessionExecutor(sub.Executor)
	if err != nil {
		return nil, err
	}

	// The session's cancel func must be in place before the session is
	// visible in m.active: a concurrent Close cancels whatever it finds
	// there.
	runCtx, cancel := context.WithCancelCause(ctx)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel(ErrManagerClosed)
		return nil, ErrManagerClosed
	}
	m.nextID++
	s := newSession(m, m.nextID, def, services, sub)
	s.cancel = cancel
	s.exec = exec
	m.active[s.id] = s
	m.wg.Add(1)
	m.mu.Unlock()

	// Journaling applies to distributed sessions (a centralized run has
	// no status stream to journal). The workflow record is durable
	// before any agent deploys — the write-ahead contract.
	if m.journal != nil && exec != nil {
		meta, err := sessionMeta(s)
		if err == nil {
			s.jw, err = m.journal.CreateSession(meta)
		}
		if err != nil {
			m.mu.Lock()
			delete(m.active, s.id)
			m.mu.Unlock()
			m.wg.Done()
			cancel(ErrCancelled)
			return nil, err
		}
	}

	// Under a virtual clock the session goroutine is a schedule
	// participant (Clock.Go); in real mode this is a plain goroutine.
	m.cluster.Clock().Go(func() {
		defer m.wg.Done()
		s.run(runCtx)
	})
	return s, nil
}

// sessionExecutor resolves a session's executor kind against the
// manager's shared backends: "" inherits the manager executor,
// centralized selects the single-interpreter path (nil executor), any
// other kind requires the shared broker.
func (m *Manager) sessionExecutor(kind executor.Kind) (executor.Executor, error) {
	switch kind {
	case "":
		return m.exec, nil
	case executor.KindCentralized:
		return nil, nil
	}
	if m.broker == nil {
		return nil, fmt.Errorf("core: session executor %q: %w", kind, ErrNoBroker)
	}
	if kind == m.cfg.Executor && m.exec != nil {
		return m.exec, nil
	}
	return executorFor(m.cfg, kind)
}

// sessionMeta builds the durable identity record of a session.
func sessionMeta(s *Session) (journal.SessionMeta, error) {
	defJSON, err := s.def.JSON()
	if err != nil {
		return journal.SessionMeta{}, err
	}
	return journal.SessionMeta{
		ID:           s.id,
		Workflow:     defJSON,
		TimeoutNS:    int64(s.sub.Timeout),
		FailureP:     s.sub.FailureP,
		FailureT:     s.sub.FailureT,
		CollectTrace: s.sub.CollectTrace,
		Executor:     string(s.sub.Executor),
	}, nil
}

// finish removes a completed session from the active set.
func (m *Manager) finish(s *Session) {
	m.mu.Lock()
	delete(m.active, s.id)
	m.mu.Unlock()
}

// Close cancels every active session, waits for them to unwind (nodes
// released, topics purged) and shuts the broker down. Submissions after
// Close fail with ErrManagerClosed.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	active := make([]*Session, 0, len(m.active))
	for _, s := range m.active {
		active = append(active, s)
	}
	m.mu.Unlock()

	for _, s := range active {
		s.Cancel(ErrManagerClosed)
	}
	m.wg.Wait()
	m.events.close()
	// The listener fronts the broker: shut it first so no remote
	// publish lands after the broker is gone.
	if m.server != nil {
		m.server.Close()
	}
	if m.metricsSrv != nil {
		m.metricsSrv.Close()
	}
	if m.broker != nil {
		return m.broker.Close()
	}
	return nil
}

// checkServices resolves every service referenced by the workflow's
// tasks and adaptation replacements against the registry.
func checkServices(def *workflow.Definition, services *agent.Registry) error {
	lookup := func(name, owner string) error {
		if name == "" {
			return nil
		}
		if services == nil {
			return fmt.Errorf("core: task %s: %w %q (nil registry)", owner, ErrUnknownService, name)
		}
		if _, ok := services.Lookup(name); !ok {
			return fmt.Errorf("core: task %s: %w %q", owner, ErrUnknownService, name)
		}
		return nil
	}
	for i := range def.Tasks {
		if err := lookup(def.Tasks[i].Service, def.Tasks[i].ID); err != nil {
			return err
		}
	}
	for i := range def.Adaptations {
		for j := range def.Adaptations[i].Replacement {
			r := &def.Adaptations[i].Replacement[j]
			if err := lookup(r.Service, r.ID); err != nil {
				return err
			}
		}
	}
	return nil
}

// executorFor instantiates the executor of the given kind from the
// config's per-executor tuning sections.
func executorFor(cfg Config, kind executor.Kind) (executor.Executor, error) {
	switch kind {
	case executor.KindSSH:
		ssh := cfg.SSH
		return &ssh, nil
	case executor.KindMesos:
		m := cfg.Mesos
		return &m, nil
	case executor.KindEC2:
		e := cfg.EC2
		return &e, nil
	default:
		return nil, fmt.Errorf("core: unknown distributed executor %q", kind)
	}
}
