package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/mq"
	"ginflow/internal/trace"
)

// supervisor keeps one goroutine per placement running agent
// incarnations: when an incarnation dies of an injected crash, a
// replacement is started on the same node after the modelled restart
// delay ("when one SA fails ... another SA will be automatically started
// to replace it", §IV-B). With a log-backed broker the replacement
// replays its inbox; with a queue broker the pre-crash messages are lost
// and the paper's recovery guarantee does not hold — which is exactly why
// the resilience evaluation runs on Kafka.
type supervisor struct {
	cluster    *cluster.Cluster
	broker     mq.Broker
	services   *agent.Registry
	injector   *failure.Injector
	placements map[string]*cluster.Node

	// topicPrefix / spaceTopic scope the supervised agents to their
	// session's topic namespace on the shared broker (empty values take
	// the agent package defaults, for single-session setups and tests).
	topicPrefix string
	spaceTopic  string

	restartDelay  float64
	maxRecoveries int
	recorder      *trace.Recorder
	metrics       *agent.Metrics

	// chaos / retry parameterise the agents' transient-fault injection
	// and retry budget (nil chaos disables it).
	chaos *failure.Schedule
	retry failure.RetryConfig

	failureCount  atomic.Int64
	recoveryCount atomic.Int64
	dupCount      atomic.Int64
}

func (s *supervisor) failures() int     { return int(s.failureCount.Load()) }
func (s *supervisor) recoveries() int   { return int(s.recoveryCount.Load()) }
func (s *supervisor) duplicates() int64 { return s.dupCount.Load() }

// newAgent builds one incarnation for a placement.
func (s *supervisor) newAgent(p executor.Placement, incarnation int) *agent.Agent {
	return agent.New(agent.Config{
		Spec:        p.Spec,
		Broker:      s.broker,
		Cluster:     s.cluster,
		Node:        p.Node,
		Placements:  s.placements,
		Services:    s.services,
		Injector:    s.injector,
		SpaceTopic:  s.spaceTopic,
		TopicPrefix: s.topicPrefix,
		Incarnation: incarnation,
		Trace:       s.recorder,
		Chaos:       s.chaos,
		Retry:       s.retry,
		Metrics:     s.metrics,
	})
}

// run drives agent incarnations for one placement until the context ends
// or an unrecoverable error occurs. The caller provides the first
// incarnation (already subscribed, so the engine can barrier on
// subscriptions before any agent starts).
func (s *supervisor) run(ctx context.Context, p executor.Placement, first *agent.Agent) error {
	for incarnation := 0; ; incarnation++ {
		a := first
		if incarnation > 0 || a == nil {
			a = s.newAgent(p, incarnation)
		}
		err := a.Run(ctx)
		s.dupCount.Add(a.DuplicatesSuppressed())
		switch {
		case err == nil:
			return nil // context ended: orderly shutdown
		case agent.IsCrash(err):
			s.failureCount.Add(1)
			if int(s.recoveryCount.Load()) >= s.maxRecoveries {
				return fmt.Errorf("supervisor: recovery budget exhausted: %w", err)
			}
			s.recoveryCount.Add(1)
			// Modelled respawn cost: detection + rescheduling
			// (interruptible: a cancelled session does not wait it out).
			if s.cluster.Clock().SleepCtx(ctx, s.restartDelay) != nil {
				return nil
			}
			s.recorder.Record(trace.AgentRecovered, p.Spec.Task.Name, incarnation+1, "")
		default:
			// A spent retry budget escalates: the session fails with the
			// structured cause chain instead of stalling on a silent agent.
			var esc *agent.EscalationError
			if errors.As(err, &esc) {
				s.recorder.Record(trace.AgentEscalated, esc.Task, esc.Incarnation,
					fmt.Sprintf("service %s: %d attempts: %v", esc.Service, esc.Attempts, esc.Cause))
			}
			return err
		}
	}
}
