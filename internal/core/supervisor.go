package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/mq"
	"ginflow/internal/trace"
)

// supervisor keeps one goroutine per placement running agent
// incarnations: when an incarnation dies of an injected crash, a
// replacement is started on the same node after the modelled restart
// delay ("when one SA fails ... another SA will be automatically started
// to replace it", §IV-B). With a log-backed broker the replacement
// replays its inbox; with a queue broker the pre-crash messages are lost
// and the paper's recovery guarantee does not hold — which is exactly why
// the resilience evaluation runs on Kafka.
type supervisor struct {
	cluster    *cluster.Cluster
	broker     mq.Broker
	services   *agent.Registry
	injector   *failure.Injector
	placements map[string]*cluster.Node

	// topicPrefix / spaceTopic scope the supervised agents to their
	// session's topic namespace on the shared broker (empty values take
	// the agent package defaults, for single-session setups and tests).
	topicPrefix string
	spaceTopic  string

	restartDelay  float64
	maxRecoveries int
	recorder      *trace.Recorder

	failureCount  atomic.Int64
	recoveryCount atomic.Int64
}

func (s *supervisor) failures() int   { return int(s.failureCount.Load()) }
func (s *supervisor) recoveries() int { return int(s.recoveryCount.Load()) }

// newAgent builds one incarnation for a placement.
func (s *supervisor) newAgent(p executor.Placement, incarnation int) *agent.Agent {
	return agent.New(agent.Config{
		Spec:        p.Spec,
		Broker:      s.broker,
		Cluster:     s.cluster,
		Node:        p.Node,
		Placements:  s.placements,
		Services:    s.services,
		Injector:    s.injector,
		SpaceTopic:  s.spaceTopic,
		TopicPrefix: s.topicPrefix,
		Incarnation: incarnation,
		Trace:       s.recorder,
	})
}

// run drives agent incarnations for one placement until the context ends
// or an unrecoverable error occurs. The caller provides the first
// incarnation (already subscribed, so the engine can barrier on
// subscriptions before any agent starts).
func (s *supervisor) run(ctx context.Context, p executor.Placement, first *agent.Agent) error {
	for incarnation := 0; ; incarnation++ {
		a := first
		if incarnation > 0 || a == nil {
			a = s.newAgent(p, incarnation)
		}
		err := a.Run(ctx)
		switch {
		case err == nil:
			return nil // context ended: orderly shutdown
		case agent.IsCrash(err):
			s.failureCount.Add(1)
			if int(s.recoveryCount.Load()) >= s.maxRecoveries {
				return fmt.Errorf("supervisor: recovery budget exhausted: %w", err)
			}
			s.recoveryCount.Add(1)
			// Modelled respawn cost: detection + rescheduling
			// (interruptible: a cancelled session does not wait it out).
			if s.cluster.Clock().SleepCtx(ctx, s.restartDelay) != nil {
				return nil
			}
			s.recorder.Record(trace.AgentRecovered, p.Spec.Task.Name, incarnation+1, "")
		default:
			return err
		}
	}
}
