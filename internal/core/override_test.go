package core

import (
	"context"
	"errors"
	"testing"

	"ginflow/internal/executor"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// TestSubmitExecutorOverride mixes a centralized debug session and a
// Mesos session into an SSH manager: each session runs on its chosen
// executor while sharing the manager's platform.
func TestSubmitExecutorOverride(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(8),
	})
	def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false))
	services := diamondServices(nil)
	ctx := context.Background()

	cases := []struct {
		name string
		opts []SubmitOption
		want string
	}{
		{"default ssh", nil, string(executor.KindSSH)},
		{"centralized debug", []SubmitOption{SubmitExecutor(executor.KindCentralized)}, string(executor.KindCentralized)},
		{"mesos override", []SubmitOption{SubmitExecutor(executor.KindMesos)}, string(executor.KindMesos)},
	}
	for _, tc := range cases {
		s, err := m.Submit(ctx, def, services, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rep, err := s.Wait(ctx)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.Executor != tc.want {
			t.Errorf("%s: executor %q, want %q", tc.name, rep.Executor, tc.want)
		}
		if rep.Statuses[workflow.DiamondMergeName] != hoclflow.StatusCompleted {
			t.Errorf("%s: merge is %v", tc.name, rep.Statuses[workflow.DiamondMergeName])
		}
	}
}

// TestSubmitExecutorOverrideNeedsBroker: a centralized manager has no
// broker, so widening a session to a distributed executor fails fast.
func TestSubmitExecutorOverrideNeedsBroker(t *testing.T) {
	m := newTestManager(t, Config{
		Executor: executor.KindCentralized,
		Cluster:  fastCluster(4),
	})
	def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false))
	_, err := m.Submit(context.Background(), def, diamondServices(nil), SubmitExecutor(executor.KindSSH))
	if !errors.Is(err, ErrNoBroker) {
		t.Fatalf("got %v, want ErrNoBroker", err)
	}
}

// TestManagerEventsMergedBus: the manager-level stream carries every
// session's events stamped with its session ID and closes on Close.
func TestManagerEventsMergedBus(t *testing.T) {
	m, err := NewManager(Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	events := m.Events()
	def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false))
	services := diamondServices(nil)
	ctx := context.Background()

	var ids []int64
	for i := 0; i < 2; i++ {
		s, err := m.Submit(ctx, def, services)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID())
	}
	m.Close()

	completedBy := map[int64]bool{}
	for e := range events { // Close closed the channel
		if e.SessionID == 0 {
			t.Fatalf("event without session stamp: %+v", e)
		}
		if e.Kind == trace.TaskCompleted {
			completedBy[e.SessionID] = true
		}
	}
	for _, id := range ids {
		if !completedBy[id] {
			t.Errorf("no task-completed events for session %d on the merged bus", id)
		}
	}
}
