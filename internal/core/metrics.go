package core

import (
	"ginflow/internal/agent"
	"ginflow/internal/obs"
	"ginflow/internal/trace"
)

// coreMetrics is the manager's resolved instrument set: session
// lifecycle counters, deployment/execution timing histograms on both
// clock axes, and one counter per enactment event kind. Instruments are
// resolved once per manager; the recorder sink and the session epilogue
// only touch resolved pointers.
type coreMetrics struct {
	agents *agent.Metrics

	sessionsStarted   *obs.Counter
	sessionsCompleted *obs.Counter
	sessionsFailed    *obs.Counter

	deployModel *obs.Histogram // model seconds spent deploying
	execModel   *obs.Histogram // model seconds enacting
	sessionWall *obs.Histogram // wall seconds per session, end to end

	deployRetries *obs.Counter // chaos-faulted deployment attempts retried

	// eventKinds counts enactment events by kind. Kinds missing from
	// the map (none today) resolve to a nil counter, whose Inc is a
	// no-op.
	eventKinds map[trace.Kind]*obs.Counter
}

// eventKindList enumerates every trace.Kind so each gets a counter
// series up front (series appear in /metrics at zero instead of on
// first occurrence).
var eventKindList = []trace.Kind{
	trace.AgentStarted, trace.ServiceInvoked, trace.ServiceCompleted,
	trace.ServiceErrored, trace.ResultSent, trace.AdaptTriggered,
	trace.AgentCrashed, trace.AgentRecovered, trace.TaskCompleted,
	trace.SessionRecovered, trace.ServiceFaulted, trace.MessageDeduped,
	trace.AgentEscalated, trace.EventsDropped,
}

// newCoreMetrics resolves the manager instrument set on reg and
// registers the gauges that read live manager state.
func newCoreMetrics(m *Manager, reg *obs.Registry) *coreMetrics {
	cm := &coreMetrics{
		agents: agent.NewMetrics(reg),
		sessionsStarted: reg.Counter("ginflow_sessions_started_total",
			"Workflow sessions submitted (recovered sessions included)."),
		sessionsCompleted: reg.Counter("ginflow_sessions_completed_total",
			"Workflow sessions that finished successfully."),
		sessionsFailed: reg.Counter("ginflow_sessions_failed_total",
			"Workflow sessions that ended in an error (stall, cancel, escalation)."),
		deployModel: reg.Histogram("ginflow_session_deploy_model_seconds",
			"Model-clock deployment time per session.", obs.ModelSecondsBuckets),
		execModel: reg.Histogram("ginflow_session_exec_model_seconds",
			"Model-clock execution time per session.", obs.ModelSecondsBuckets),
		sessionWall: reg.Histogram("ginflow_session_wall_seconds",
			"Wall-clock duration per session, submission to settled report.", obs.WallSecondsBuckets),
		deployRetries: reg.Counter("ginflow_retry_attempts_total",
			"Retries after transient faults, per boundary.", obs.L("boundary", "deploy")),
		eventKinds: make(map[trace.Kind]*obs.Counter, len(eventKindList)),
	}
	for _, k := range eventKindList {
		cm.eventKinds[k] = reg.Counter("ginflow_events_total",
			"Enactment events recorded, by kind.", obs.L("kind", string(k)))
	}
	reg.GaugeFunc("ginflow_sessions_active",
		"Workflow sessions currently running on this manager.",
		func() float64 { return float64(m.Active()) })
	reg.GaugeFunc("ginflow_model_time_seconds",
		"Current model-clock reading of the manager's cluster.",
		func() float64 { return m.cluster.Clock().Now() })
	return cm
}
