package core

import (
	"context"
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/hoclflow"
	"ginflow/internal/journal"
	"ginflow/internal/montage"
	"ginflow/internal/mq"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// The chaos soak: every workload below runs once fault-free to pin the
// converged space fingerprint, then once per seeded schedule with the
// full fault mix — message drop/duplicate/delay/reorder, transient and
// slow invocations, journal write errors and torn writes — and every
// chaotic run must land on the identical fingerprint. A divergence
// names its seed, so the failing schedule replays from the log alone.

// soakSeeds returns the number of seeded schedules each soak test runs.
// CI raises it via GINFLOW_CHAOS_SEEDS (the chaos-soak job sets 17, so
// the three workloads together cover 51 schedules under -race).
func soakSeeds(t *testing.T, def int) int {
	t.Helper()
	if s := os.Getenv("GINFLOW_CHAOS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad GINFLOW_CHAOS_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 2
	}
	return def
}

// soakChaosMix is the full-surface fault mix: every boundary the
// schedule knows is perturbed at once.
func soakChaosMix(seed int64) failure.ChaosConfig {
	return failure.ChaosConfig{
		Seed:            seed,
		MessageDropP:    0.05,
		MessageDupP:     0.10,
		MessageDelayP:   0.10,
		MessageReorderP: 0.05,
		InvokeErrorP:    0.05,
		InvokeTimeoutP:  0.03,
		InvokeSlowP:     0.10,
		DeployErrorP:    0.10,
		JournalErrorP:   0.10,
		JournalTornP:    0.05,
	}
}

// runWithFingerprint executes def on a fresh Manager and returns the
// report plus the session space's converged state fingerprint.
func runWithFingerprint(t *testing.T, def *workflow.Definition, services *agent.Registry, cfg Config) (*Report, uint64) {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.Submit(context.Background(), def, services)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Wait(context.Background())
	if err != nil {
		t.Fatalf("run failed: %v (report %v)", err, rep)
	}
	return rep, s.space.StateFingerprint()
}

// soakWorkload runs the fault-free baseline, then `seeds` chaotic runs,
// requiring fingerprint-identical convergence every time.
func soakWorkload(t *testing.T, def *workflow.Definition, services *agent.Registry, seeds int, baseSeed int64) {
	t.Helper()
	clean := Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindLog,
		Cluster:  fastCluster(8),
		Timeout:  2 * time.Minute,
	}
	baseRep, baseFP := runWithFingerprint(t, def, services, clean)
	faultsSeen := int64(0)
	for i := 0; i < seeds; i++ {
		seed := baseSeed + int64(i)
		cfg := clean
		cfg.Journal = journal.Config{Dir: t.TempDir(), SnapshotEvery: 8}
		cfg.Chaos = soakChaosMix(seed)
		cfg.Retry = failure.RetryConfig{MaxAttempts: 8, BackoffBase: 0.25}
		rep, fp := runWithFingerprint(t, def, services, cfg)
		if fp != baseFP {
			t.Errorf("seed %d: space fingerprint %016x diverged from fault-free %016x", seed, fp, baseFP)
		}
		for task, st := range baseRep.Statuses {
			if rep.Statuses[task] != st {
				t.Errorf("seed %d: task %s converged to %v, fault-free run to %v", seed, task, rep.Statuses[task], st)
			}
		}
		faultsSeen += rep.DuplicatesSuppressed
	}
	// At the soak's duplicate probability the dedup layer must have
	// fired somewhere across the schedules, or the soak proved nothing.
	if seeds >= 4 && faultsSeen == 0 {
		t.Errorf("no duplicate was ever suppressed across %d schedules; soak looks vacuous", seeds)
	}
}

func TestChaosSoakDiamond(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(3, 3, false))
	soakWorkload(t, def, diamondServices(nil), soakSeeds(t, 8), 100)
}

func TestChaosSoakMontage(t *testing.T) {
	if testing.Short() {
		t.Skip("Montage soak is slow")
	}
	services := agent.NewRegistry()
	montage.RegisterServices(services)
	soakWorkload(t, montage.Workflow(), services, soakSeeds(t, 4), 200)
}

// TestChaosSoakAdapted soaks the §V-B adaptation scenario: the last
// mesh service fails, the body is swapped mid-run — all while the fault
// schedule perturbs the messages carrying the ADAPT propagation.
func TestChaosSoakAdapted(t *testing.T) {
	spec := workflow.DefaultDiamondSpec(2, 2, false)
	def := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, false, "workalt")
	last, _ := def.TaskByID(workflow.LastMeshTask(spec))
	last.Service = "flaky"
	services := diamondServices(nil)
	services.RegisterFailing("flaky", 0.1)
	soakWorkload(t, def, services, soakSeeds(t, 6), 300)
}

// TestChaosDuplicateDeliverySuppressed aims the schedule at duplication
// alone: the per-inbox sequence numbers must absorb every duplicate and
// the run must still converge to the fault-free fingerprint.
func TestChaosDuplicateDeliverySuppressed(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(3, 3, false))
	services := diamondServices(nil)
	clean := Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindLog,
		Cluster:  fastCluster(8),
		Timeout:  time.Minute,
	}
	_, baseFP := runWithFingerprint(t, def, services, clean)

	cfg := clean
	cfg.Chaos = failure.ChaosConfig{Seed: 42, MessageDupP: 0.5}
	rep, fp := runWithFingerprint(t, def, services, cfg)
	if rep.DuplicatesSuppressed == 0 {
		t.Fatal("p=0.5 duplication and nothing suppressed: the dedup layer never ran")
	}
	if fp != baseFP {
		t.Fatalf("duplicated deliveries changed the converged state: %016x vs %016x", fp, baseFP)
	}
	if got := rep.Statuses[workflow.DiamondMergeName]; got != hoclflow.StatusCompleted {
		t.Fatalf("merge = %v under duplication", got)
	}
}

// TestChaosEscalationFailsSession spends the retry budget on a certain
// invocation fault: the session must fail promptly with the structured
// cause chain — ErrRetriesExhausted wrapping the injected cause, the
// escalation visible on the event stream — instead of stalling until
// the timeout.
func TestChaosEscalationFailsSession(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false))
	m, err := NewManager(Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(4),
		Timeout:  time.Minute,
		Chaos: failure.ChaosConfig{
			Seed:           7,
			InvokeErrorP:   1,
			MaxConsecutive: -1, // never force a clean draw: the budget MUST run out
		},
		Retry: failure.RetryConfig{MaxAttempts: 2, BackoffBase: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.Submit(context.Background(), def, diamondServices(nil), SubmitTrace())
	if err != nil {
		t.Fatal(err)
	}
	events := s.Events()
	start := time.Now()
	_, err = s.Wait(context.Background())
	if err == nil {
		t.Fatal("session completed under a certain invocation fault")
	}
	if time.Since(start) > 30*time.Second {
		t.Error("escalation did not preempt the session timeout")
	}
	if !errors.Is(err, failure.ErrRetriesExhausted) {
		t.Fatalf("error chain misses ErrRetriesExhausted: %v", err)
	}
	if !errors.Is(err, failure.ErrInjected) {
		t.Fatalf("error chain misses the injected cause: %v", err)
	}
	var esc *agent.EscalationError
	if !errors.As(err, &esc) {
		t.Fatalf("error chain misses the structured escalation: %v", err)
	}
	if esc.Task == "" || esc.Service == "" || esc.Attempts < 2 {
		t.Errorf("escalation cause incomplete: %+v", esc)
	}
	escalated := false
	for e := range events {
		if e.Kind == trace.AgentEscalated {
			escalated = true
		}
	}
	if !escalated {
		t.Error("no agent-escalated event on the session stream")
	}
}

// TestRecoverRestoresReplayLogs: the journaled inbox history must be
// re-seeded into the fresh broker's replay logs during Recover, so an
// agent crash after resume can still replay messages consumed before
// the original process died.
func TestRecoverRestoresReplayLogs(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(3, 3, false))
	services := diamondServices(nil)
	dir := t.TempDir()
	ctx := context.Background()

	logCfg := func(crashAfter int64) Config {
		cfg := journaledConfig(dir, crashAfter)
		cfg.Broker = mq.KindLog
		return cfg
	}
	m1, err := NewManager(logCfg(30))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m1.Submit(ctx, def, services)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2, err := NewManager(logCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	ids, err := m2.Journal().SessionIDs()
	if err != nil || len(ids) != 1 {
		t.Fatalf("journaled sessions: %v (%v)", ids, err)
	}
	st, err := m2.Journal().ReadSession(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Inbox) == 0 {
		t.Fatal("kill@30 journaled no inbox traffic; test is vacuous")
	}
	perTopic := map[string]int{}
	for _, rec := range st.Inbox {
		perTopic[rec.Topic]++
	}

	sessions, err := m2.Recover(ctx, services)
	if err != nil || len(sessions) != 1 {
		t.Fatalf("recover: %v (%d sessions)", err, len(sessions))
	}
	// The restored logs are in place before the resumed agents run; live
	// traffic only appends, so each topic holds at least its journaled
	// history.
	rep, ok := m2.broker.(mq.Replayable)
	if !ok {
		t.Fatal("log broker is not replayable")
	}
	for topic, n := range perTopic {
		if got := len(rep.Log(topic)); got < n {
			t.Errorf("topic %s replay log holds %d messages, journal had %d", topic, got, n)
		}
	}
	final, err := sessions[0].Wait(ctx)
	if err != nil {
		t.Fatalf("recovered session failed: %v", err)
	}
	if final.Statuses[workflow.DiamondMergeName] != hoclflow.StatusCompleted {
		t.Fatalf("merge = %v after replay-log recovery", final.Statuses[workflow.DiamondMergeName])
	}
}

// TestHubCountsDroppedDeliveries pins the lossy-hub contract: a full
// subscriber buffer drops the delivery and the drop is counted, never
// blocked on.
func TestHubCountsDroppedDeliveries(t *testing.T) {
	h := newHub[int](2)
	ch := h.subscribe()
	for i := 0; i < 10; i++ {
		h.publish(i)
	}
	if got := h.droppedCount(); got != 8 {
		t.Fatalf("dropped %d deliveries, want 8", got)
	}
	if len(ch) != 2 {
		t.Fatalf("buffer holds %d, want 2", len(ch))
	}
	// Draining reopens capacity; the counter is cumulative.
	<-ch
	h.publish(11)
	if got := h.droppedCount(); got != 8 {
		t.Fatalf("dropped %d after drain, want still 8", got)
	}
	h.close()
}
