package core

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/hoclflow"
	"ginflow/internal/montage"
	"ginflow/internal/mq"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// Virtual-time behaviour of the engine (DESIGN.md "Virtual time"):
// same-seed runs must report bit-identical model-time numbers, scale
// costs CPU instead of wall-clock, and the observable outcome — space
// fingerprint, task statuses, completion causality — must match the
// real-clock engine exactly.

// virtualCluster mirrors fastCluster on the discrete-event clock.
func virtualCluster(nodes int, seed int64) cluster.Config {
	return cluster.Config{Nodes: nodes, CoresPerNode: 24, Seed: seed, Virtual: true}
}

// zeroServiceTime removes the modelled per-message broker occupancy so
// a run's critical path closes over service durations and hop latencies
// alone — the regime where final model time is predictable in closed
// form (the scale tests below assert exact equality against it).
func zeroServiceTime(t *testing.T, m *Manager) {
	t.Helper()
	st, ok := m.broker.(interface{ SetServiceTime(float64) })
	if !ok {
		t.Fatalf("broker %T has no service-time knob", m.broker)
	}
	st.SetServiceTime(0)
}

// fanSummary captures every timing-flavoured output of a fan run: the
// determinism test requires two same-seed runs to agree on all of it,
// bit for bit.
type fanSummary struct {
	Deploy, Exec, Total []float64
	Events              [][]trace.Event
	Fingerprints        []uint64
}

// runVirtualFan submits `fan` copies of a seeded 8x8 diamond to one
// shared virtual-clock Manager — under the full message/invocation
// chaos mix, the hardest case for timing stability — and collects the
// summary.
func runVirtualFan(t *testing.T, fan int) fanSummary {
	t.Helper()
	m, err := NewManager(Config{
		Executor:     executor.KindSSH,
		Broker:       mq.KindQueue,
		Cluster:      virtualCluster(25, 7),
		Timeout:      2 * time.Minute,
		CollectTrace: true,
		Chaos:        soakChaosMix(7),
		Retry:        failure.RetryConfig{MaxAttempts: 8, BackoffBase: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	sessions := make([]*Session, fan)
	for i := range sessions {
		def := workflow.Diamond(workflow.DefaultDiamondSpec(8, 8, false))
		s, err := m.Submit(context.Background(), def, diamondServices(nil))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	var sum fanSummary
	for _, s := range sessions {
		rep, err := s.Wait(context.Background())
		if err != nil {
			t.Fatalf("fan session failed: %v", err)
		}
		sum.Deploy = append(sum.Deploy, rep.DeployTime)
		sum.Exec = append(sum.Exec, rep.ExecTime)
		sum.Total = append(sum.Total, rep.TotalTime)
		sum.Events = append(sum.Events, rep.Events)
		sum.Fingerprints = append(sum.Fingerprints, s.space.StateFingerprint())
	}
	// Note the shared clock's final reading is NOT part of the summary:
	// after the last Wait returns, chaos redelivery timers are still
	// draining, so a Now() read from outside the schedule races with
	// teardown. The deterministic quantities are the per-session reports.
	return sum
}

// TestVirtualTimingDeterminism: two same-seed virtual runs of a chaotic
// 8x8 diamond fan must report bit-identical timing numbers — deploy,
// exec and total times, the final clock reading, and every model-time
// stamp on every event timeline. This is the virtual clock's core
// promise; it must hold under -race and -count=N.
func TestVirtualTimingDeterminism(t *testing.T) {
	a := runVirtualFan(t, 3)
	b := runVirtualFan(t, 3)
	for i, total := range a.Total {
		if total <= 0 {
			t.Fatalf("fan session %d reported zero model time", i)
		}
	}
	for i, evs := range a.Events {
		if len(evs) == 0 {
			t.Fatalf("fan session %d collected no events", i)
		}
	}
	if !reflect.DeepEqual(a.Deploy, b.Deploy) || !reflect.DeepEqual(a.Exec, b.Exec) || !reflect.DeepEqual(a.Total, b.Total) {
		t.Errorf("timing numbers diverged between same-seed runs:\n  run A deploy=%v exec=%v total=%v\n  run B deploy=%v exec=%v total=%v",
			a.Deploy, a.Exec, a.Total, b.Deploy, b.Exec, b.Total)
	}
	if !reflect.DeepEqual(a.Fingerprints, b.Fingerprints) {
		t.Errorf("fingerprints diverged: %x vs %x", a.Fingerprints, b.Fingerprints)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		for i := range a.Events {
			if len(a.Events[i]) != len(b.Events[i]) {
				t.Errorf("session %d: %d events vs %d", i, len(a.Events[i]), len(b.Events[i]))
				continue
			}
			for j := range a.Events[i] {
				if a.Events[i][j] != b.Events[i][j] {
					t.Errorf("session %d event %d diverged:\n  A: %v\n  B: %v", i, j, a.Events[i][j], b.Events[i][j])
					break
				}
			}
		}
	}
}

// sshDeployModel is the SSH executor's deployment time for its default
// tuning (executor.SSH godoc: base 2.0, 0.25 per node, 0.6 per batch of
// 16 parallel connections).
func sshDeployModel(nodes, agents int) float64 {
	return 2.0 + 0.25*float64(nodes) + 0.6*math.Ceil(float64(agents)/16)
}

// diamondExecModel is the critical path of an h×v simple-connected
// diamond with zero broker occupancy: v+2 sequential stages (split, v
// mesh rows, merge), each one service invocation plus one broker hop of
// latency — the horizontal width only adds parallel work, never path
// length.
func diamondExecModel(v int, service, latency float64) float64 {
	return float64(v+2) * (service + latency)
}

// TestVirtualScaleMesh100x100: a 10,000-task mesh — far beyond what the
// real clock can run in test budgets — must complete under the virtual
// clock in CI-friendly wall time, converge to a placement-independent
// fingerprint, and land the clock exactly on the analytic critical-path
// model time.
func TestVirtualScaleMesh100x100(t *testing.T) {
	if raceEnabled {
		t.Skip("10k-goroutine scale run under the race detector blows the CI budget")
	}
	if testing.Short() {
		t.Skip("scale test")
	}
	const (
		h, v   = 100, 100
		agents = h*v + 2 // mesh + split + merge
		nodes  = 100
	)
	run := func(seed int64) (*Report, uint64, float64) {
		m, err := NewManager(Config{
			Executor: executor.KindSSH,
			Broker:   mq.KindQueue,
			// 101 cores per node: 10,100 slots for the 10,002 agents.
			Cluster: cluster.Config{Nodes: nodes, CoresPerNode: 101, Seed: seed, Virtual: true},
			Timeout: 5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		zeroServiceTime(t, m)
		def := workflow.Diamond(workflow.DefaultDiamondSpec(h, v, false))
		s, err := m.Submit(context.Background(), def, diamondServices(nil))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Wait(context.Background())
		if err != nil {
			t.Fatalf("100x100 mesh failed: %v", err)
		}
		return rep, s.space.StateFingerprint(), m.cluster.Clock().Now()
	}

	repA, fpA, nowA := run(1)
	_, fpB, nowB := run(99)

	if repA.Agents != agents {
		t.Errorf("deployed %d agents, want %d", repA.Agents, agents)
	}
	if len(repA.Statuses) != agents {
		t.Errorf("report carries %d task statuses, want %d", len(repA.Statuses), agents)
	}
	for task, st := range repA.Statuses {
		if st != hoclflow.StatusCompleted {
			t.Errorf("task %s = %v, want completed", task, st)
		}
	}
	// The converged fingerprint reflects workflow state only: a
	// different seed reshuffles placement and chaos-free hash draws yet
	// must land on the identical space.
	if fpA != fpB {
		t.Errorf("fingerprint depends on the cluster seed: %016x vs %016x", fpA, fpB)
	}
	// 0.1 is diamondServices' noop duration, 2.0 the queue broker's
	// modelled hop latency (mq.DefaultQueueLatency).
	want := sshDeployModel(nodes, agents) + diamondExecModel(v, 0.1, mq.DefaultQueueLatency)
	if math.Abs(nowA-want) > 1e-6 {
		t.Errorf("final model time %v, analytic critical path %v", nowA, want)
	}
	if nowA != nowB {
		t.Errorf("final model time differs across seeds: %v vs %v", nowA, nowB)
	}
}

// TestVirtualThousandSessionFan: one thousand concurrent sessions over
// a single shared Manager. Submissions are pinned to model time zero by
// joining the schedule (Clock.Enter) for the submission loop, so every
// session runs the same critical path concurrently — the final clock
// reading must equal one session's path, not a thousand.
func TestVirtualThousandSessionFan(t *testing.T) {
	if raceEnabled {
		t.Skip("thousand-session run under the race detector blows the CI budget")
	}
	if testing.Short() {
		t.Skip("scale test")
	}
	const (
		fan   = 1000
		nodes = 125 // 125 × 24 cores = 3000 slots, one per agent
	)
	m, err := NewManager(Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  virtualCluster(nodes, 1),
		Timeout:  5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	zeroServiceTime(t, m)

	clock := m.cluster.Clock()
	clock.Enter()
	sessions := make([]*Session, fan)
	for i := range sessions {
		def := workflow.Diamond(workflow.DefaultDiamondSpec(1, 1, false))
		s, err := m.Submit(context.Background(), def, diamondServices(nil))
		if err != nil {
			clock.Exit()
			t.Fatal(err)
		}
		sessions[i] = s
	}
	clock.Exit()

	// One 1x1 diamond: 3 agents (one deploy batch), 3 stages.
	want := sshDeployModel(nodes, 3) + diamondExecModel(1, 0.1, mq.DefaultQueueLatency)
	var fp0 uint64
	for i, s := range sessions {
		rep, err := s.Wait(context.Background())
		if err != nil {
			t.Fatalf("session %d failed: %v", i, err)
		}
		if math.Abs(rep.TotalTime-want) > 1e-6 {
			t.Fatalf("session %d total %v, want the single-session critical path %v", i, rep.TotalTime, want)
		}
		fp := s.space.StateFingerprint()
		if i == 0 {
			fp0 = fp
		} else if fp != fp0 {
			t.Fatalf("session %d fingerprint %016x differs from session 0's %016x", i, fp, fp0)
		}
	}
	if now := clock.Now(); math.Abs(now-want) > 1e-6 {
		t.Errorf("final model time %v after %d concurrent sessions, want one critical path %v", now, fan, want)
	}
}

// modeRun is one workload enactment's observable outcome, compared
// across clock modes.
type modeRun struct {
	fp       uint64
	statuses map[string]hoclflow.Status
	order    []string // first task-completed event per task, in timeline order
}

func runMode(t *testing.T, def *workflow.Definition, services *agent.Registry, cfg Config) modeRun {
	t.Helper()
	cfg.CollectTrace = true
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.Submit(context.Background(), def, services)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Wait(context.Background())
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var order []string
	seen := map[string]bool{}
	for _, e := range rep.Events {
		if e.Kind == trace.TaskCompleted && !seen[e.Task] {
			seen[e.Task] = true
			order = append(order, e.Task)
		}
	}
	return modeRun{fp: s.space.StateFingerprint(), statuses: rep.Statuses, order: order}
}

// assertCausalOrder verifies a completion sequence respects every
// workflow dependency edge: no task completes before a predecessor.
func assertCausalOrder(t *testing.T, def *workflow.Definition, order []string, mode string) {
	t.Helper()
	idx := map[string]int{}
	for i, task := range order {
		idx[task] = i
	}
	for _, task := range order {
		for _, src := range def.SrcOf(task) {
			at, ok := idx[src]
			if !ok {
				t.Errorf("%s: %s completed but its predecessor %s never did", mode, task, src)
				continue
			}
			if at > idx[task] {
				t.Errorf("%s: %s completed at position %d before its predecessor %s at %d",
					mode, task, idx[task], src, at)
			}
		}
	}
}

// TestCrossModeEquivalence: the virtual clock must not change what a
// run computes — only how time passes. For the diamond, the Montage
// workload and the §V-B adaptation scenario, real- and virtual-clock
// enactments must converge to the same space fingerprint, the same
// task statuses and a completion order respecting the same dependency
// edges; the same holds under a seeded chaos schedule, and two
// same-seed virtual runs must order completions identically.
func TestCrossModeEquivalence(t *testing.T) {
	type workload struct {
		name     string
		def      *workflow.Definition
		services *agent.Registry
		causal   bool // the def's edges describe every completed task
		chaos    bool // also soak this workload under the chaos mix
		slow     bool
	}
	spec := workflow.DefaultDiamondSpec(2, 2, false)
	adapted := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, false, "workalt")
	last, _ := adapted.TaskByID(workflow.LastMeshTask(spec))
	last.Service = "flaky"
	adaptedServices := diamondServices(nil)
	adaptedServices.RegisterFailing("flaky", 0.1)
	montageServices := agent.NewRegistry()
	montage.RegisterServices(montageServices)

	workloads := []workload{
		{name: "diamond", def: workflow.Diamond(workflow.DefaultDiamondSpec(3, 3, false)),
			services: diamondServices(nil), causal: true, chaos: true},
		{name: "adapted", def: adapted, services: adaptedServices, chaos: true},
		{name: "montage", def: montage.Workflow(), services: montageServices, causal: true, slow: true},
	}

	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			if w.slow && testing.Short() {
				t.Skip("slow workload")
			}
			clean := func(virtual bool) Config {
				cfg := Config{
					Executor: executor.KindSSH,
					Broker:   mq.KindLog,
					Cluster:  fastCluster(8),
					Timeout:  2 * time.Minute,
				}
				if virtual {
					cfg.Cluster = virtualCluster(8, 1)
				}
				return cfg
			}
			real := runMode(t, w.def, w.services, clean(false))
			virt := runMode(t, w.def, w.services, clean(true))
			virt2 := runMode(t, w.def, w.services, clean(true))

			if real.fp != virt.fp {
				t.Errorf("fingerprint diverged across clock modes: real %016x, virtual %016x", real.fp, virt.fp)
			}
			if !reflect.DeepEqual(real.statuses, virt.statuses) {
				t.Errorf("statuses diverged across clock modes:\n  real    %v\n  virtual %v", real.statuses, virt.statuses)
			}
			realSet, virtSet := map[string]bool{}, map[string]bool{}
			for _, task := range real.order {
				realSet[task] = true
			}
			for _, task := range virt.order {
				virtSet[task] = true
			}
			if !reflect.DeepEqual(realSet, virtSet) {
				t.Errorf("completed task sets diverged:\n  real    %v\n  virtual %v", real.order, virt.order)
			}
			if w.causal {
				assertCausalOrder(t, w.def, real.order, "real")
				assertCausalOrder(t, w.def, virt.order, "virtual")
			}
			if !reflect.DeepEqual(virt.order, virt2.order) {
				t.Errorf("same-seed virtual runs ordered completions differently:\n  %v\n  %v", virt.order, virt2.order)
			}

			if !w.chaos {
				return
			}
			chaotic := func(virtual bool) Config {
				cfg := clean(virtual)
				cfg.Chaos = soakChaosMix(42)
				cfg.Retry = failure.RetryConfig{MaxAttempts: 8, BackoffBase: 0.25}
				return cfg
			}
			realChaos := runMode(t, w.def, w.services, chaotic(false))
			virtChaos := runMode(t, w.def, w.services, chaotic(true))
			virtChaos2 := runMode(t, w.def, w.services, chaotic(true))
			if realChaos.fp != real.fp {
				t.Errorf("real chaotic run diverged from fault-free fingerprint: %016x vs %016x", realChaos.fp, real.fp)
			}
			if virtChaos.fp != real.fp {
				t.Errorf("virtual chaotic run diverged from fault-free fingerprint: %016x vs %016x", virtChaos.fp, real.fp)
			}
			if !reflect.DeepEqual(virtChaos.order, virtChaos2.order) {
				t.Errorf("same-seed chaotic virtual runs ordered completions differently:\n  %v\n  %v",
					virtChaos.order, virtChaos2.order)
			}
		})
	}
}
