package core

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/executor"
	"ginflow/internal/hoclflow"
	"ginflow/internal/journal"
	"ginflow/internal/montage"
	"ginflow/internal/mq"
	"ginflow/internal/space"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// The crash-recovery harness: run a journal-backed session whose
// journal freezes at a chosen record count (the CrashAfterRecords test
// hook leaves the directory exactly as a process kill at that instant
// would), then recover it on a fresh Manager over the same directory
// and require the final report to match an uninterrupted run — without
// re-invoking any task whose RES was already journaled.

func journaledConfig(dir string, crashAfter int64) Config {
	return Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(8),
		Timeout:  60 * time.Second,
		Journal: journal.Config{
			Dir:               dir,
			SnapshotEvery:     8,
			CrashAfterRecords: crashAfter,
		},
	}
}

// journaledStatuses folds a journaled session's replay stream into a
// throwaway space and returns the per-task statuses the journal
// preserves — the ground truth for "this task's RES was durable before
// the crash".
func journaledStatuses(t *testing.T, j *journal.Journal, id int64) map[string]hoclflow.Status {
	t.Helper()
	st, err := j.ReadSession(id)
	if err != nil {
		t.Fatalf("read journaled session %d: %v", id, err)
	}
	sp := space.New()
	for _, payload := range st.Payloads {
		if len(payload) == 0 {
			continue
		}
		sp.ApplyMessage(mq.Message{Atoms: payload})
	}
	out := map[string]hoclflow.Status{}
	for _, name := range sp.Names() {
		out[name] = sp.Status(name)
	}
	return out
}

// crashAndRecover runs one kill-point trial: execute the workflow with
// the journal frozen after crashAfter records, then recover on a second
// manager and return the recovered report plus the statuses the journal
// held at the kill point. ok is false when the kill point lies beyond
// the session's journal (nothing left to recover).
func crashAndRecover(t *testing.T, def *workflow.Definition, services *agent.Registry, crashAfter int64) (rep *Report, journaled map[string]hoclflow.Status, ok bool) {
	t.Helper()
	dir := t.TempDir()
	ctx := context.Background()

	m1, err := NewManager(journaledConfig(dir, crashAfter))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m1.Submit(ctx, def, services)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx); err != nil {
		t.Fatalf("first run failed: %v", err)
	}
	m1.Close()

	m2, err := NewManager(journaledConfig(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	ids, err := m2.Journal().SessionIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		return nil, nil, false // crash point beyond the run: journal finished clean
	}
	journaled = journaledStatuses(t, m2.Journal(), ids[0])

	sessions, err := m2.Recover(ctx, services, SubmitTrace())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(sessions) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(sessions))
	}
	rep, err = sessions[0].Wait(ctx)
	if err != nil {
		t.Fatalf("recovered session failed: %v (report %v)", err, rep)
	}
	return rep, journaled, true
}

// assertMatchesBaseline requires the recovered run to reproduce the
// uninterrupted run's observable outcome and to have skipped every
// service whose result was already durable.
func assertMatchesBaseline(t *testing.T, rep *Report, baseline *Report, journaled map[string]hoclflow.Status, crashAfter int64) {
	t.Helper()
	if !reflect.DeepEqual(rep.Results, baseline.Results) {
		t.Errorf("kill@%d: results diverged:\n got %v\nwant %v", crashAfter, rep.Results, baseline.Results)
	}
	for task, st := range baseline.Statuses {
		if rep.Statuses[task] != st {
			t.Errorf("kill@%d: task %s recovered %v, want %v", crashAfter, task, rep.Statuses[task], st)
		}
	}
	// No re-invocation: a task whose RES was journaled must not invoke
	// its service again in the recovered run.
	invoked := map[string]bool{}
	for _, e := range rep.Events {
		if e.Kind == trace.ServiceInvoked {
			invoked[e.Task] = true
		}
	}
	for task, st := range journaled {
		if st == hoclflow.StatusCompleted && invoked[task] {
			t.Errorf("kill@%d: completed task %s was re-invoked after recovery", crashAfter, task)
		}
	}
}

func TestRecoverDiamondAtRandomKillPoints(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(3, 3, false))
	services := diamondServices(nil)

	baseline, err := Run(context.Background(), def, services, journaledConfig("", 0).withoutJournal())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	rng := rand.New(rand.NewSource(7))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	covered := 0
	for i := 0; i < trials; i++ {
		crashAfter := int64(1 + rng.Intn(45))
		rep, journaled, ok := crashAndRecover(t, def, services, crashAfter)
		if !ok {
			continue
		}
		covered++
		assertMatchesBaseline(t, rep, baseline, journaled, crashAfter)
	}
	if covered == 0 {
		t.Fatal("no kill point landed inside the journal; harness is vacuous")
	}
}

func TestRecoverMontageKillPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("Montage recovery is slow")
	}
	def := montage.Workflow()
	services := agent.NewRegistry()
	montage.RegisterServices(services)

	baseline, err := Run(context.Background(), def, services, journaledConfig("", 0).withoutJournal())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	// One early and one deep kill point keep the runtime bounded while
	// exercising both a mostly-template and a mostly-journaled recovery.
	// The journal length varies with interleaving (delta dedup), so the
	// deep point halves until it lands inside the run.
	rep, journaled, ok := crashAndRecover(t, def, services, 25)
	if !ok {
		t.Fatal("kill@25 landed beyond the Montage journal")
	}
	assertMatchesBaseline(t, rep, baseline, journaled, 25)

	for crashAfter := int64(400); crashAfter >= 50; crashAfter /= 2 {
		rep, journaled, ok := crashAndRecover(t, def, services, crashAfter)
		if !ok {
			continue
		}
		assertMatchesBaseline(t, rep, baseline, journaled, crashAfter)
		return
	}
	t.Fatal("no deep kill point landed inside the Montage journal")
}

func TestRecoverAdaptedDiamondKillPoints(t *testing.T) {
	spec := workflow.DefaultDiamondSpec(2, 2, false)
	def := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, false, "workalt")
	services := diamondServices(nil)
	services.RegisterFailing("work", 0.1)

	baseline, err := Run(context.Background(), def, services, journaledConfig("", 0).withoutJournal())
	if err != nil {
		t.Fatalf("baseline adaptive run: %v", err)
	}
	if len(baseline.Adaptations) == 0 {
		t.Fatal("baseline never adapted; test is vacuous")
	}

	rng := rand.New(rand.NewSource(11))
	covered := 0
	trials := 5
	if testing.Short() {
		trials = 2
	}
	for i := 0; i < trials; i++ {
		crashAfter := int64(1 + rng.Intn(40))
		rep, _, ok := crashAndRecover(t, def, services, crashAfter)
		if !ok {
			continue
		}
		covered++
		if !reflect.DeepEqual(rep.Results, baseline.Results) {
			t.Errorf("kill@%d: adapted results diverged:\n got %v\nwant %v",
				crashAfter, rep.Results, baseline.Results)
		}
		for _, exit := range def.Exits() {
			if rep.Statuses[exit] != hoclflow.StatusCompleted {
				t.Errorf("kill@%d: exit %s is %v", crashAfter, exit, rep.Statuses[exit])
			}
		}
	}
	if covered == 0 {
		t.Fatal("no kill point landed inside the journal; harness is vacuous")
	}
}

// TestRecoverTornTail appends garbage to the newest segment after the
// simulated crash — the torn half-record of a mid-write kill — and
// requires recovery to succeed regardless.
func TestRecoverTornTail(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false))
	services := diamondServices(nil)
	dir := t.TempDir()
	ctx := context.Background()

	m1, err := NewManager(journaledConfig(dir, 12))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m1.Submit(ctx, def, services)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	// Tear the tail of every segment file left behind.
	matches, err := filepath.Glob(filepath.Join(dir, "wf-*", "seg-*.gfj"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files to tear (%v)", err)
	}
	for _, path := range matches {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{0x13, 0x37, 0xde, 0xad})
		f.Close()
	}

	m2, err := NewManager(journaledConfig(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	sessions, err := m2.Recover(ctx, services)
	if err != nil {
		t.Fatalf("recover over torn tail: %v", err)
	}
	if len(sessions) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(sessions))
	}
	rep, err := sessions[0].Wait(ctx)
	if err != nil {
		t.Fatalf("recovered session failed: %v", err)
	}
	if rep.Statuses[workflow.DiamondMergeName] != hoclflow.StatusCompleted {
		t.Fatalf("merge is %v after torn-tail recovery", rep.Statuses[workflow.DiamondMergeName])
	}
}

func TestRecoverMultipleConcurrentSessions(t *testing.T) {
	services := diamondServices(nil)
	dir := t.TempDir()
	ctx := context.Background()

	m1, err := NewManager(journaledConfig(dir, 10))
	if err != nil {
		t.Fatal(err)
	}
	defs := []*workflow.Definition{
		workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false)),
		workflow.Diamond(workflow.DefaultDiamondSpec(3, 2, false)),
		workflow.Diamond(workflow.DefaultDiamondSpec(2, 3, false)),
	}
	for _, def := range defs {
		s, err := m1.Submit(ctx, def, services)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	m1.Close()

	m2, err := NewManager(journaledConfig(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	sessions, err := m2.Recover(ctx, services)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != len(defs) {
		t.Fatalf("recovered %d sessions, want %d", len(sessions), len(defs))
	}
	for _, s := range sessions {
		rep, err := s.Wait(ctx)
		if err != nil {
			t.Errorf("session %d failed: %v", s.ID(), err)
			continue
		}
		if rep.Statuses[workflow.DiamondMergeName] != hoclflow.StatusCompleted {
			t.Errorf("session %d merge is %v", s.ID(), rep.Statuses[workflow.DiamondMergeName])
		}
	}

	// New submissions on the recovered manager must not collide with the
	// recovered IDs.
	s, err := m2.Submit(ctx, defs[0], services)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range sessions {
		if s.ID() == old.ID() {
			t.Fatalf("new session reused recovered ID %d", s.ID())
		}
	}
	if _, err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverSkipsFinishedSessions(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false))
	services := diamondServices(nil)
	dir := t.TempDir()
	ctx := context.Background()

	m1, err := NewManager(journaledConfig(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m1.Submit(ctx, def, services)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2, err := NewManager(journaledConfig(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	sessions, err := m2.Recover(ctx, services)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 0 {
		t.Fatalf("recovered %d finished sessions, want 0", len(sessions))
	}
}

// TestManagerCloseLeavesSessionsResumable: a graceful shutdown
// (Manager.Close) is an operator stopping the process, not cancelling
// the workflows — the journal must stay resumable.
func TestManagerCloseLeavesSessionsResumable(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(4, 4, false))
	// Slow tasks keep the session safely mid-run when Close fires right
	// after Submit (a finished session reclaims its journal instead).
	services := agent.NewRegistry()
	services.RegisterNoop(5.0, "split", "work", "merge", "workalt")
	dir := t.TempDir()
	ctx := context.Background()

	m1, err := NewManager(journaledConfig(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Submit(ctx, def, services); err != nil {
		t.Fatal(err)
	}
	// Close mid-run: the session is cancelled with ErrManagerClosed and
	// its journal left on disk.
	m1.Close()

	m2, err := NewManager(journaledConfig(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	sessions, err := m2.Recover(ctx, services)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 {
		t.Fatalf("recovered %d sessions after Close, want 1", len(sessions))
	}
	rep, err := sessions[0].Wait(ctx)
	if err != nil {
		t.Fatalf("resumed session failed: %v", err)
	}
	if rep.Statuses[workflow.DiamondMergeName] != hoclflow.StatusCompleted {
		t.Fatalf("merge is %v after shutdown resume", rep.Statuses[workflow.DiamondMergeName])
	}
}

func TestRecoverEmitsSessionRecoveredEvent(t *testing.T) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false))
	services := diamondServices(nil)
	dir := t.TempDir()
	ctx := context.Background()

	m1, err := NewManager(journaledConfig(dir, 8))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m1.Submit(ctx, def, services)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	wantID := s.ID()
	m1.Close()

	m2, err := NewManager(journaledConfig(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	events := m2.Events() // subscribe before recovery
	sessions, err := m2.Recover(ctx, services)
	if err != nil || len(sessions) != 1 {
		t.Fatalf("recover: %v (%d sessions)", err, len(sessions))
	}
	if _, err := sessions[0].Wait(ctx); err != nil {
		t.Fatal(err)
	}
	m2.Close()

	found := false
	for e := range events {
		if e.Kind == trace.SessionRecovered && e.SessionID == wantID {
			found = true
		}
	}
	if !found {
		t.Fatal("no session-recovered event on the manager bus")
	}
}

// withoutJournal strips the journal config: the baseline runs of the
// harness are plain in-memory executions.
func (c Config) withoutJournal() Config {
	c.Journal = journal.Config{}
	return c
}
