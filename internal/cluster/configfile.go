package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// NodeSpec describes one machine in a cluster configuration file.
type NodeSpec struct {
	// Name is a human-readable machine label (optional).
	Name string `json:"name,omitempty"`
	// Cores sizes the machine; agents get 2 slots per core.
	Cores int `json:"cores"`
}

// FileConfig is the on-disk form of a platform description — the
// "predefined set of machines, to be specified in the GinFlow
// configuration file" that the SSH executor deploys onto (paper §IV-C).
//
//	{
//	  "nodes": [
//	    {"name": "paravance-1", "cores": 16},
//	    {"name": "paravance-2", "cores": 16}
//	  ],
//	  "linkLatency": 0.5,
//	  "seed": 42
//	}
type FileConfig struct {
	Nodes       []NodeSpec `json:"nodes"`
	LinkLatency float64    `json:"linkLatency,omitempty"` // model seconds
	Seed        int64      `json:"seed,omitempty"`
	// ScaleMicros overrides the clock scale, in microseconds of real
	// time per model second (0 keeps the default).
	ScaleMicros int64 `json:"scaleMicros,omitempty"`
}

// ParseConfigFile decodes a platform description. Unknown fields are
// rejected.
func ParseConfigFile(data []byte) (Config, error) {
	var fc FileConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return Config{}, fmt.Errorf("cluster: decoding config file: %w", err)
	}
	if len(fc.Nodes) == 0 {
		return Config{}, fmt.Errorf("cluster: config file lists no nodes")
	}
	cores := 0
	for i, n := range fc.Nodes {
		if n.Cores <= 0 {
			return Config{}, fmt.Errorf("cluster: node %d (%q) has %d cores", i, n.Name, n.Cores)
		}
		cores += n.Cores
	}
	cfg := Config{
		Nodes:       len(fc.Nodes),
		LinkLatency: fc.LinkLatency,
		Seed:        fc.Seed,
		NodeSpecs:   append([]NodeSpec(nil), fc.Nodes...),
	}
	// CoresPerNode backs TotalSlots estimates for uniform helpers; with
	// explicit specs the per-node values win.
	cfg.CoresPerNode = cores / len(fc.Nodes)
	if fc.ScaleMicros > 0 {
		cfg.Scale = time.Duration(fc.ScaleMicros) * time.Microsecond
	}
	return cfg, nil
}
