package cluster

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestVirtualSleepOrder: concurrent participants sleeping distinct
// durations wake in deadline order, and Now() tracks each deadline
// exactly.
func TestVirtualSleepOrder(t *testing.T) {
	c := NewVirtualClock()
	var mu sync.Mutex
	var order []float64
	var wg sync.WaitGroup
	c.Enter()
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			c.Sleep(d)
			mu.Lock()
			order = append(order, c.Now())
			mu.Unlock()
		})
	}
	c.Exit()
	wg.Wait()
	want := []float64{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("wake order = %v, want %v", order, want)
	}
	if got := c.Now(); got != 5 {
		t.Fatalf("Now() = %v, want 5", got)
	}
}

// TestVirtualTieBreak: equal deadlines fire in timer-registration
// order, which (siblings spawned in a deterministic order) is the spawn
// order.
func TestVirtualTieBreak(t *testing.T) {
	c := NewVirtualClock()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	c.Enter()
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			c.Sleep(7) // all identical deadlines
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	c.Exit()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie order = %v, want ascending spawn order", order)
		}
	}
}

// TestVirtualSleepCtxCancel: a context cancelled by another participant
// wakes the sleeper before model time advances past the cancellation
// instant.
func TestVirtualSleepCtxCancel(t *testing.T) {
	c := NewVirtualClock()
	ctx, cancel := context.WithCancel(context.Background())
	var wokeAt float64
	var err error
	var wg sync.WaitGroup
	c.Enter()
	wg.Add(1)
	c.Go(func() {
		defer wg.Done()
		err = c.SleepCtx(ctx, 100)
		wokeAt = c.Now()
	})
	c.Go(func() {
		c.Sleep(3)
		cancel()
	})
	c.Exit()
	wg.Wait()
	if err != context.Canceled {
		t.Fatalf("SleepCtx error = %v, want context.Canceled", err)
	}
	if wokeAt != 3 {
		t.Fatalf("woke at model time %v, want 3 (the cancellation instant)", wokeAt)
	}
}

// TestVirtualCond: Broadcast wakes waiters in wait order; a ctx-ended
// wait returns the ctx error.
func TestVirtualCond(t *testing.T) {
	c := NewVirtualClock()
	cond := c.NewCond()
	if cond == nil {
		t.Fatal("NewCond returned nil on a virtual clock")
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	c.Enter()
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			if err := cond.Wait(context.Background()); err != nil {
				t.Errorf("Wait: %v", err)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	c.Go(func() {
		c.Sleep(1)
		cond.Broadcast()
	})
	c.Exit()
	wg.Wait()
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("broadcast wake order = %v, want [0 1 2 3]", order)
	}
}

// TestRealModeAPIsAreNoops: the participant API must be callable
// unconditionally on a real clock.
func TestRealModeAPIsAreNoops(t *testing.T) {
	c := NewClock(time.Microsecond)
	if c.Virtual() {
		t.Fatal("real clock reports Virtual()")
	}
	c.Enter()
	c.Yield()
	c.AdvanceTo(99)
	if cond := c.NewCond(); cond != nil {
		t.Fatal("NewCond on a real clock should return nil")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	c.Go(func() { wg.Done() })
	wg.Wait()
	c.Exit()
}

// TestVirtualAdvanceTo drives the participant-less use (test clocks
// that were previously ad-hoc fakes).
func TestVirtualAdvanceTo(t *testing.T) {
	c := NewVirtualClock()
	c.AdvanceTo(2.5)
	c.AdvanceTo(1.0) // backwards: ignored
	if got := c.Now(); got != 2.5 {
		t.Fatalf("Now() = %v, want 2.5", got)
	}
}

// wakeRec is one observed timer firing.
type wakeRec struct {
	id        int
	at        float64 // model time observed at wake
	cancelled bool
}

// runVirtualSchedule runs one randomized schedule of sleepers —
// including equal deadlines, zero and negative durations, and
// mid-flight context cancellations — and returns the observed wake
// sequence. Deterministic in seed.
func runVirtualSchedule(t *testing.T, seed int64, n int) []wakeRec {
	t.Helper()
	c := NewVirtualClock()
	rng := rand.New(rand.NewSource(seed))

	type sleeper struct {
		id     int
		d      float64
		cancel bool    // will be cancelled mid-flight…
		cat    float64 // …at this model time (< d)
	}
	var plan []sleeper
	for i := 0; i < n; i++ {
		s := sleeper{id: i}
		switch rng.Intn(5) {
		case 0: // duplicate deadline bucket
			s.d = float64(1 + rng.Intn(3))
		case 1: // zero / negative
			s.d = float64(-rng.Intn(2))
		default:
			s.d = rng.Float64() * 10
		}
		if s.d > 1 && rng.Intn(3) == 0 {
			s.cancel = true
			s.cat = s.d * rng.Float64() * 0.9
		}
		plan = append(plan, s)
	}

	var mu sync.Mutex
	var got []wakeRec
	var wg sync.WaitGroup
	c.Enter()
	for _, s := range plan {
		s := s
		ctx := context.Context(context.Background())
		if s.cancel {
			cctx, cancel := context.WithCancel(ctx)
			ctx = cctx
			c.Go(func() {
				c.Sleep(s.cat)
				cancel()
			})
		}
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			err := c.SleepCtx(ctx, s.d)
			mu.Lock()
			got = append(got, wakeRec{id: s.id, at: c.Now(), cancelled: err != nil})
			mu.Unlock()
		})
	}
	c.Exit()
	wg.Wait()
	return got
}

// TestVirtualScheduleProperty: for many random seeds, wakes occur in
// nondecreasing model time, uncancelled sleepers wake exactly at their
// deadline, and the whole sequence is bit-identical across two runs of
// the same seed.
func TestVirtualScheduleProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		a := runVirtualSchedule(t, seed, 40)
		b := runVirtualSchedule(t, seed, 40)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two runs diverged:\n%v\n%v", seed, a, b)
		}
		last := -1.0
		for i, w := range a {
			if w.at < last {
				t.Fatalf("seed %d: wake %d at %v before previous %v", seed, i, w.at, last)
			}
			last = w.at
		}
	}
}

// FuzzVirtualSchedule feeds arbitrary seeds/sizes through the same
// property.
func FuzzVirtualSchedule(f *testing.F) {
	f.Add(int64(42), uint8(20))
	f.Add(int64(7), uint8(3))
	f.Add(int64(-1), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		size := int(n%64) + 1
		a := runVirtualSchedule(t, seed, size)
		b := runVirtualSchedule(t, seed, size)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d size %d: runs diverged", seed, size)
		}
		last := -1.0
		for _, w := range a {
			if w.at < last {
				t.Fatalf("seed %d: nonmonotone wake at %v after %v", seed, w.at, last)
			}
			last = w.at
		}
	})
}
