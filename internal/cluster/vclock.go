package cluster

import (
	"container/heap"
	"context"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Virtual time — a discrete-event scheduler behind the model Clock.
//
// In virtual mode the clock never sleeps real time. Instead, every
// goroutine that takes part in a run is a *participant* in a
// cooperative, single-run-token schedule: exactly one participant
// executes at any instant, and every blocking boundary (modelled
// sleeps, broker delivery waits, space condition waits) releases the
// token back to the scheduler. When the ready queue is empty the
// scheduler advances Now() to the earliest pending timer deadline and
// fires it — ties break by timer registration order — so the whole
// interleaving, and therefore every model-time stamp a run reports, is
// a deterministic function of the call sequence.
//
// The token discipline is what makes this sound where a plain waiter
// registry would not be: a goroutine woken through a Go channel
// rendezvous is invisible to any registry and would leave a window in
// which the system looks quiescent while work is still runnable,
// advancing time early and nondeterministically. Here nothing runs
// without holding the token, so "ready queue empty" *is* quiescence.
// The cost of the discipline is that an accounting mistake manifests
// as a deterministic hang (debuggable), never as a flaky timestamp.

// waiter states. A waiter is created per blocking call, lives in at
// most one of the timer heap / a Cond's list plus optionally the
// interruptible list, and is granted the run token exactly once.
const (
	stBlocked = iota // parked on a timer deadline or a Cond
	stQueued         // moved to the ready queue, awaiting the token
	stGranted        // token sent; the goroutine is (about to be) running
)

type vwaiter struct {
	seq   uint64        // registration order — the deterministic tie-breaker
	at    float64       // timer deadline in model seconds (timer waiters)
	grant chan struct{} // buffered(1); a send transfers the run token
	state int

	// interrupted reports that the waiter was woken by its context
	// ending rather than by its timer/Cond. Written under the scheduler
	// lock before the grant send, read by the woken goroutine after the
	// grant receive.
	interrupted bool
	done        <-chan struct{} // ctx.Done(); nil when not interruptible
}

// timerHeap orders waiters by (deadline, registration seq).
type timerHeap []*vwaiter

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(*vwaiter)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// vsched is the discrete-event scheduler state shared by one virtual
// Clock and all its participants.
type vsched struct {
	mu      sync.Mutex
	now     float64
	seq     uint64
	running bool // the run token is held by some participant
	ready   []*vwaiter
	timers  timerHeap
	// intr lists waiters whose block can be broken by a context ending.
	// Entries are swept (and stale ones compacted away) every time the
	// scheduler is about to advance model time, and polled on a real
	// timer when the schedule is otherwise idle, so even a stalled run
	// can be torn down by a real-time timeout.
	intr     []*vwaiter
	idleArm  bool // an idle-poll AfterFunc is pending

	// holder is the goroutine id of the current run-token holder, 0
	// while the token is in flight or free. Blocking calls compare it
	// against their own goid: a call from any other goroutine is an
	// *outside* caller — it did not hold the token, must not free it,
	// and joins the schedule only for the duration of its block (the
	// token is handed straight back on wake). This is what makes
	// clock.Sleep safe from goroutines that never entered the schedule,
	// e.g. a journal retry backoff on the Submit caller's goroutine.
	holder uint64
}

func newVsched() *vsched { return &vsched{} }

// goid parses the current goroutine's id from its runtime.Stack header
// ("goroutine N [...]"). ~1µs; only virtual-mode scheduler operations
// pay it.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// claim records the calling goroutine as the token holder; called
// immediately after every grant receive.
func (v *vsched) claim(gid uint64) {
	v.mu.Lock()
	v.holder = gid
	v.mu.Unlock()
}

// releaseLocked frees the run token and hands it to the next runnable
// participant. Callers hold v.mu.
func (v *vsched) releaseLocked() {
	v.running = false
	v.holder = 0
	v.scheduleLocked()
}

func (v *vsched) newWaiter() *vwaiter {
	v.seq++
	return &vwaiter{seq: v.seq, grant: make(chan struct{}, 1), state: stBlocked}
}

// scheduleLocked hands the run token to the next runnable participant:
// ready queue first (FIFO), else the earliest pending timer — advancing
// model time to its deadline. Called with v.mu held and the token free.
func (v *vsched) scheduleLocked() {
	for {
		if v.running {
			return
		}
		if len(v.ready) > 0 {
			w := v.ready[0]
			v.ready = v.ready[1:]
			if len(v.ready) == 0 {
				v.ready = nil
			}
			w.state = stGranted
			v.running = true
			w.grant <- struct{}{}
			return
		}
		// About to advance time: first honour any cancellations that
		// already happened. A canceller necessarily held the token when
		// it called cancel() (context cancellation is synchronous), so
		// every relevant ctx is already Done here — no racing window.
		if v.sweepCancelledLocked() {
			continue
		}
		for v.timers.Len() > 0 {
			w := heap.Pop(&v.timers).(*vwaiter)
			if w.state != stBlocked {
				continue // cancelled or already woken; heap entry is stale
			}
			if w.at > v.now {
				v.now = w.at
			}
			w.state = stGranted
			v.running = true
			w.grant <- struct{}{}
			return
		}
		// Idle. If interruptible waiters remain, a real-time timeout may
		// still cancel them (a stalled run being torn down) — poll.
		v.armIdlePollLocked()
		return
	}
}

// sweepCancelledLocked moves every interruptible waiter whose context
// has ended to the ready queue, in registration order, and compacts
// stale entries. Reports whether any waiter was moved.
func (v *vsched) sweepCancelledLocked() bool {
	var woken []*vwaiter
	live := v.intr[:0]
	for _, w := range v.intr {
		if w.state != stBlocked {
			continue // already fired or broadcast; drop the entry
		}
		select {
		case <-w.done:
			w.interrupted = true
			w.state = stQueued
			woken = append(woken, w)
		default:
			live = append(live, w)
		}
	}
	for i := len(live); i < len(v.intr); i++ {
		v.intr[i] = nil
	}
	v.intr = live
	if len(woken) == 0 {
		return false
	}
	sort.Slice(woken, func(i, j int) bool { return woken[i].seq < woken[j].seq })
	v.ready = append(v.ready, woken...)
	return true
}

// idlePollInterval is the real-time cadence at which an otherwise idle
// virtual schedule re-checks interruptible waiters. It only matters for
// stalled runs being cancelled from outside (e.g. a real-time session
// timeout); healthy runs never go idle with waiters pending.
const idlePollInterval = 2 * time.Millisecond

func (v *vsched) armIdlePollLocked() {
	if v.idleArm {
		return
	}
	blocked := false
	for _, w := range v.intr {
		if w.state == stBlocked {
			blocked = true
			break
		}
	}
	if !blocked {
		return
	}
	v.idleArm = true
	time.AfterFunc(idlePollInterval, func() {
		v.mu.Lock()
		v.idleArm = false
		if !v.running && len(v.ready) == 0 && v.timers.Len() == 0 {
			if v.sweepCancelledLocked() {
				v.scheduleLocked()
			} else {
				v.armIdlePollLocked()
			}
		}
		v.mu.Unlock()
	})
}

// enter registers the calling goroutine as a participant and blocks
// until it is granted the run token.
func (v *vsched) enter() {
	gid := goid()
	v.mu.Lock()
	w := v.newWaiter()
	w.state = stQueued
	v.ready = append(v.ready, w)
	v.scheduleLocked()
	v.mu.Unlock()
	<-w.grant
	v.claim(gid)
}

// exit releases the run token without re-queuing: the participant is
// leaving the schedule.
func (v *vsched) exit() {
	v.mu.Lock()
	v.releaseLocked()
	v.mu.Unlock()
}

// goRun spawns fn as a new participant. The spawn is queued
// synchronously (so sibling order is the call order); fn starts running
// once the scheduler grants it the token.
func (v *vsched) goRun(fn func()) {
	v.mu.Lock()
	w := v.newWaiter()
	w.state = stQueued
	v.ready = append(v.ready, w)
	v.scheduleLocked() // no-op when the caller holds the token
	v.mu.Unlock()
	go func() {
		<-w.grant
		v.claim(goid())
		fn()
		v.exit()
	}()
}

// yield moves the caller to the back of the ready queue, letting every
// other runnable participant proceed first.
func (v *vsched) yield() {
	gid := goid()
	v.mu.Lock()
	w := v.newWaiter()
	w.state = stQueued
	v.ready = append(v.ready, w)
	v.running = false
	v.holder = 0
	v.scheduleLocked()
	v.mu.Unlock()
	<-w.grant
	v.claim(gid)
}

// sleep parks the caller until now+seconds, or until ctx ends.
// Non-positive durations return immediately, matching the real clock.
// ctx may be nil (uninterruptible).
func (v *vsched) sleep(ctx context.Context, seconds float64) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if seconds <= 0 {
		return nil
	}
	gid := goid()
	v.mu.Lock()
	isHolder := v.running && v.holder == gid
	w := v.newWaiter()
	w.at = v.now + seconds
	heap.Push(&v.timers, w)
	if ctx != nil && ctx.Done() != nil {
		w.done = ctx.Done()
		v.intr = append(v.intr, w)
	}
	if isHolder {
		v.running = false
		v.holder = 0
	}
	// An outside caller (no token held) leaves `running` alone: it joins
	// the schedule for this block only and gives the token back on wake.
	v.scheduleLocked()
	v.mu.Unlock()
	<-w.grant
	if isHolder {
		v.claim(gid)
	} else {
		v.mu.Lock()
		v.releaseLocked()
		v.mu.Unlock()
	}
	if w.interrupted {
		return ctx.Err()
	}
	return nil
}

func (v *vsched) nowModel() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// advanceTo moves model time forward by hand. Only meaningful on a
// clock with no active participants (unit tests driving Now() values
// directly); it does not fire timers.
func (v *vsched) advanceTo(t float64) {
	v.mu.Lock()
	if t > v.now {
		v.now = t
	}
	v.mu.Unlock()
}

// Cond is a scheduler-aware condition variable for virtual mode: the
// replacement for channel-based waits, which a single-token schedule
// cannot express (an unbuffered rendezvous needs two goroutines
// runnable at once). Wait releases the run token; Broadcast moves every
// current waiter to the ready queue in wait order. Obtain one from
// Clock.NewCond; in real mode NewCond returns nil and callers keep
// their channel paths.
type Cond struct {
	v       *vsched
	waiters []*vwaiter
}

// Wait releases the run token and parks the caller until Broadcast (or
// ctx ending, which returns ctx.Err()). The caller must hold the run
// token. Re-check the guarded condition on return, as with sync.Cond.
func (cd *Cond) Wait(ctx context.Context) error {
	v := cd.v
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	gid := goid()
	v.mu.Lock()
	isHolder := v.running && v.holder == gid
	w := v.newWaiter()
	cd.waiters = append(cd.waiters, w)
	if ctx != nil && ctx.Done() != nil {
		w.done = ctx.Done()
		v.intr = append(v.intr, w)
	}
	if isHolder {
		v.running = false
		v.holder = 0
	}
	v.scheduleLocked()
	v.mu.Unlock()
	<-w.grant
	if isHolder {
		v.claim(gid)
	} else {
		v.mu.Lock()
		v.releaseLocked()
		v.mu.Unlock()
	}
	if w.interrupted {
		return ctx.Err()
	}
	return nil
}

// Broadcast wakes every goroutine currently parked in Wait, in the
// order they began waiting. The caller should hold the run token (a
// participant); the wakes take effect when the token is next released.
func (cd *Cond) Broadcast() {
	v := cd.v
	v.mu.Lock()
	for _, w := range cd.waiters {
		if w.state != stBlocked {
			continue // already woken by cancellation
		}
		w.state = stQueued
		v.ready = append(v.ready, w)
	}
	cd.waiters = cd.waiters[:0]
	v.scheduleLocked() // no-op when the broadcaster holds the token
	v.mu.Unlock()
}
