package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestParseConfigFile(t *testing.T) {
	src := `{
	  "nodes": [
	    {"name": "paravance-1", "cores": 16},
	    {"name": "paravance-2", "cores": 8},
	    {"cores": 4}
	  ],
	  "linkLatency": 0.5,
	  "seed": 42,
	  "scaleMicros": 200
	}`
	cfg, err := ParseConfigFile([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 3 || len(cfg.NodeSpecs) != 3 {
		t.Errorf("nodes = %d / %d", cfg.Nodes, len(cfg.NodeSpecs))
	}
	if cfg.LinkLatency != 0.5 || cfg.Seed != 42 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Scale != 200*time.Microsecond {
		t.Errorf("scale = %v", cfg.Scale)
	}

	c := New(cfg)
	if got := len(c.Nodes()); got != 3 {
		t.Fatalf("built %d nodes", got)
	}
	if c.Node(0).String() != "paravance-1" || c.Node(0).Slots() != 32 {
		t.Errorf("node 0: %v slots %d", c.Node(0), c.Node(0).Slots())
	}
	if c.Node(1).Slots() != 16 {
		t.Errorf("node 1 slots = %d", c.Node(1).Slots())
	}
	if c.Node(2).String() != "node-2" { // unnamed falls back to id
		t.Errorf("node 2 = %v", c.Node(2))
	}
	if got := c.TotalSlots(); got != 2*(16+8+4) {
		t.Errorf("total slots = %d", got)
	}
}

func TestParseConfigFileRejects(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`{`, "decoding"},
		{`{"nodes": []}`, "no nodes"},
		{`{"nodes": [{"cores": 0}]}`, "cores"},
		{`{"nodes": [{"cores": 2}], "bogus": 1}`, "decoding"},
	}
	for _, c := range cases {
		_, err := ParseConfigFile([]byte(c.src))
		if err == nil {
			t.Errorf("ParseConfigFile(%q) succeeded", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error %q does not mention %q", err, c.frag)
		}
	}
}

func TestNodeSpecsOverrideNodeCount(t *testing.T) {
	cfg := Config{
		Nodes:     99, // overridden by explicit specs
		NodeSpecs: []NodeSpec{{Cores: 2}, {Cores: 2}},
	}
	c := New(cfg)
	if got := len(c.Nodes()); got != 2 {
		t.Errorf("nodes = %d, want 2", got)
	}
}
