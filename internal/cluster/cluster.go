// Package cluster simulates the distributed platform GinFlow runs on —
// the stand-in for the paper's Grid'5000 testbed (§V: up to 25 nodes,
// 1 Gbps Ethernet, two service agents per core).
//
// All modelled durations are expressed in model seconds and realised by
// sleeping scaledDuration = modelSeconds × Clock.Scale real time. With
// the default scale of 1 ms per model second, an experiment the paper
// reports as 484 s runs in roughly half a real second while preserving
// every concurrency interleaving. Reported numbers are read back in
// model seconds, so they are directly comparable to the paper's figures.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// DefaultScale is the default real-time cost of one model second.
const DefaultScale = time.Millisecond

// Clock converts model time to scaled real time — or, in virtual mode,
// advances model time by discrete events without sleeping at all (see
// vclock.go for the scheduling discipline). The zero value is not
// usable; use NewClock or NewVirtualClock.
type Clock struct {
	scale time.Duration
	start time.Time
	v     *vsched // non-nil in virtual mode
}

// NewClock returns a clock charging `scale` of real time per model
// second. A non-positive scale falls back to DefaultScale.
func NewClock(scale time.Duration) *Clock {
	if scale <= 0 {
		scale = DefaultScale
	}
	return &Clock{scale: scale, start: time.Now()}
}

// NewVirtualClock returns a discrete-event clock: Sleep and SleepCtx
// park the calling participant with the scheduler instead of sleeping
// real time, and Now() jumps to the earliest pending deadline whenever
// every participant is blocked. Goroutines using a virtual clock must
// join the schedule via Enter/Go and only block through the clock (or a
// Cond); see vclock.go.
func NewVirtualClock() *Clock {
	return &Clock{scale: DefaultScale, v: newVsched()}
}

// Virtual reports whether this is a discrete-event clock.
func (c *Clock) Virtual() bool { return c.v != nil }

// Scale returns the real-time cost of one model second.
func (c *Clock) Scale() time.Duration { return c.scale }

// Sleep blocks for the scaled equivalent of the given model seconds.
// Negative or zero durations return immediately.
func (c *Clock) Sleep(modelSeconds float64) {
	if c.v != nil {
		c.v.sleep(nil, modelSeconds)
		return
	}
	if modelSeconds <= 0 {
		return
	}
	time.Sleep(time.Duration(modelSeconds * float64(c.scale)))
}

// SleepCtx blocks like Sleep but returns early with ctx.Err() when the
// context ends first — the interruption point that lets a cancelled
// workflow session release its agents without draining their in-flight
// modelled invocations.
func (c *Clock) SleepCtx(ctx context.Context, modelSeconds float64) error {
	if c.v != nil {
		return c.v.sleep(ctx, modelSeconds)
	}
	if modelSeconds <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(time.Duration(modelSeconds * float64(c.scale)))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Now returns the model seconds elapsed since the clock was created
// (virtual mode: the scheduler's current model time).
func (c *Clock) Now() float64 {
	if c.v != nil {
		return c.v.nowModel()
	}
	return float64(time.Since(c.start)) / float64(c.scale)
}

// Enter joins the calling goroutine to a virtual clock's schedule as a
// participant, blocking until it is granted the run token. A real-mode
// clock ignores the call. Pair with Exit.
func (c *Clock) Enter() {
	if c.v != nil {
		c.v.enter()
	}
}

// Exit removes the calling participant from a virtual clock's schedule,
// releasing the run token. After Exit the goroutine may block on
// anything (real channels, WaitGroups) without stalling model time, and
// may rejoin later with Enter. A real-mode clock ignores the call.
func (c *Clock) Exit() {
	if c.v != nil {
		c.v.exit()
	}
}

// Go spawns fn on a new goroutine. Under a virtual clock the goroutine
// is registered as a schedule participant before Go returns (sibling
// start order is the Go call order — deterministic); under a real clock
// it is a plain `go fn()`.
func (c *Clock) Go(fn func()) {
	if c.v != nil {
		c.v.goRun(fn)
		return
	}
	go fn()
}

// Yield lets every other runnable participant proceed before the caller
// continues (virtual mode; real mode is a no-op). Model time does not
// advance: the caller re-queues behind the current ready set.
func (c *Clock) Yield() {
	if c.v != nil {
		c.v.yield()
	}
}

// AdvanceTo moves a virtual clock's model time forward by hand without
// firing timers. It is meaningful only on a clock with no active
// participants — unit tests driving Now() values directly. Real-mode
// clocks and backwards targets ignore the call.
func (c *Clock) AdvanceTo(t float64) {
	if c.v != nil {
		c.v.advanceTo(t)
	}
}

// NewCond returns a scheduler-aware condition variable bound to a
// virtual clock, or nil on a real-mode clock (callers keep their
// channel-based paths there).
func (c *Clock) NewCond() *Cond {
	if c.v == nil {
		return nil
	}
	return &Cond{v: c.v}
}

// Node is one machine of the simulated platform. The paper limits
// deployment to two service agents per core (§V); Slots enforces it.
type Node struct {
	ID    int
	Cores int
	// Name is an optional human-readable machine label (config files).
	Name string

	mu    sync.Mutex
	inUse int
}

// Slots returns the agent capacity of the node (2 per core).
func (n *Node) Slots() int { return 2 * n.Cores }

// Allocate reserves one agent slot, reporting false when the node is
// full.
func (n *Node) Allocate() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inUse >= n.Slots() {
		return false
	}
	n.inUse++
	return true
}

// Release frees one agent slot.
func (n *Node) Release() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inUse > 0 {
		n.inUse--
	}
}

// InUse returns the number of allocated slots.
func (n *Node) InUse() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inUse
}

func (n *Node) String() string {
	if n.Name != "" {
		return n.Name
	}
	return fmt.Sprintf("node-%d", n.ID)
}

// Config sizes the simulated platform.
type Config struct {
	// Nodes is the machine count (the paper uses 5..25).
	Nodes int
	// CoresPerNode sizes each machine (568 cores / 25 nodes ≈ 23 in the
	// paper; default 24).
	CoresPerNode int
	// LinkLatency is the one-way network latency between two distinct
	// nodes, in model seconds. The default is 0: transport cost is
	// carried by the broker's per-message latency, since host timer
	// granularity (~1.2 ms real) makes sub-model-second sleeps
	// meaningless at the default scale.
	LinkLatency float64
	// Scale is the real-time cost of one model second (default 1 ms).
	Scale time.Duration
	// Seed makes the simulation reproducible (default 1).
	Seed int64
	// Virtual selects the discrete-event clock: modelled sleeps cost no
	// real time, and Now() advances to the earliest pending deadline
	// whenever every participant goroutine is blocked. Scale is ignored
	// in virtual mode.
	Virtual bool
	// NodeSpecs, when non-empty, describes heterogeneous machines
	// explicitly (e.g. loaded from a configuration file); it overrides
	// Nodes and CoresPerNode.
	NodeSpecs []NodeSpec
}

func (c Config) withDefaults() Config {
	if len(c.NodeSpecs) > 0 {
		c.Nodes = len(c.NodeSpecs)
	}
	if c.Nodes <= 0 {
		c.Nodes = 25
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 24
	}
	if c.LinkLatency < 0 {
		c.LinkLatency = 0
	}
	if c.Scale <= 0 {
		c.Scale = DefaultScale
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Cluster is the simulated platform: nodes, a shared model clock and a
// link-latency model.
type Cluster struct {
	cfg   Config
	nodes []*Node
	clock *Clock

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a cluster from the config (zero values take defaults).
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	clock := NewClock(cfg.Scale)
	if cfg.Virtual {
		clock = NewVirtualClock()
	}
	c := &Cluster{
		cfg:   cfg,
		clock: clock,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.Nodes; i++ {
		node := &Node{ID: i, Cores: cfg.CoresPerNode}
		if i < len(cfg.NodeSpecs) {
			spec := cfg.NodeSpecs[i]
			node.Cores = spec.Cores
			node.Name = spec.Name
		}
		c.nodes = append(c.nodes, node)
	}
	return c
}

// Nodes returns the platform's machines.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns the i-th machine.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Clock returns the shared model clock.
func (c *Cluster) Clock() *Clock { return c.clock }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Latency returns the one-way message latency between two nodes in model
// seconds (zero within a node).
func (c *Cluster) Latency(from, to *Node) float64 {
	if from == nil || to == nil || from.ID == to.ID {
		return 0
	}
	return c.cfg.LinkLatency
}

// TotalSlots returns the agent capacity of the whole platform.
func (c *Cluster) TotalSlots() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Slots()
	}
	return total
}

// Rand derives a new deterministic RNG stream from the cluster seed.
// Each caller gets an independent stream, so concurrent consumers do not
// contend on one generator.
func (c *Cluster) Rand() *rand.Rand {
	c.mu.Lock()
	defer c.mu.Unlock()
	return rand.New(rand.NewSource(c.rng.Int63()))
}
