package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockScaling(t *testing.T) {
	c := NewClock(time.Millisecond)
	start := time.Now()
	c.Sleep(20) // 20 model seconds = 20 ms real
	real := time.Since(start)
	if real < 15*time.Millisecond || real > 500*time.Millisecond {
		t.Errorf("scaled sleep took %v, want ~20ms", real)
	}
	if now := c.Now(); now < 15 {
		t.Errorf("model Now() = %v, want >= ~20", now)
	}
}

func TestClockNonPositiveSleep(t *testing.T) {
	c := NewClock(time.Millisecond)
	start := time.Now()
	c.Sleep(0)
	c.Sleep(-5)
	if time.Since(start) > 50*time.Millisecond {
		t.Error("non-positive sleeps must return immediately")
	}
}

func TestClockDefaultScale(t *testing.T) {
	if got := NewClock(0).Scale(); got != DefaultScale {
		t.Errorf("default scale = %v", got)
	}
	if got := NewClock(-1).Scale(); got != DefaultScale {
		t.Errorf("negative scale = %v", got)
	}
}

func TestNodeSlots(t *testing.T) {
	n := &Node{ID: 3, Cores: 2}
	if n.Slots() != 4 {
		t.Fatalf("slots = %d, want 4 (2 per core, §V)", n.Slots())
	}
	for i := 0; i < 4; i++ {
		if !n.Allocate() {
			t.Fatalf("allocation %d failed", i)
		}
	}
	if n.Allocate() {
		t.Error("over-allocation succeeded")
	}
	if n.InUse() != 4 {
		t.Errorf("InUse = %d", n.InUse())
	}
	n.Release()
	if !n.Allocate() {
		t.Error("slot not reusable after release")
	}
	if n.String() != "node-3" {
		t.Errorf("String = %q", n.String())
	}
}

func TestNodeReleaseNeverNegative(t *testing.T) {
	n := &Node{Cores: 1}
	n.Release()
	if n.InUse() != 0 {
		t.Errorf("InUse went negative: %d", n.InUse())
	}
}

func TestClusterDefaults(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if cfg.Nodes != 25 || cfg.CoresPerNode != 24 {
		t.Errorf("defaults: %+v (paper: 25 nodes)", cfg)
	}
	if len(c.Nodes()) != 25 {
		t.Errorf("nodes: %d", len(c.Nodes()))
	}
	if got := c.TotalSlots(); got != 25*24*2 {
		t.Errorf("slots: %d", got)
	}
}

func TestClusterLatency(t *testing.T) {
	c := New(Config{Nodes: 2, LinkLatency: 0.5})
	a, b := c.Node(0), c.Node(1)
	if got := c.Latency(a, a); got != 0 {
		t.Errorf("intra-node latency = %v", got)
	}
	if got := c.Latency(a, b); got != 0.5 {
		t.Errorf("inter-node latency = %v", got)
	}
	if got := c.Latency(nil, b); got != 0 {
		t.Errorf("nil-node latency = %v", got)
	}
}

func TestClusterRandDeterministic(t *testing.T) {
	seq := func(seed int64) []int64 {
		c := New(Config{Seed: seed})
		var out []int64
		for i := 0; i < 5; i++ {
			out = append(out, c.Rand().Int63())
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

// Property: allocation never exceeds capacity under any interleaving of
// allocate/release operations.
func TestQuickNodeCapacityInvariant(t *testing.T) {
	f := func(ops []bool, cores uint8) bool {
		n := &Node{Cores: int(cores%4) + 1}
		allocated := 0
		for _, alloc := range ops {
			if alloc {
				if n.Allocate() {
					allocated++
				}
			} else if allocated > 0 {
				n.Release()
				allocated--
			}
			if n.InUse() > n.Slots() || n.InUse() != allocated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
