package failure

import (
	"math"
	"math/rand"
	"testing"
)

func TestZeroValueNeverFails(t *testing.T) {
	var inj Injector
	for i := 0; i < 100; i++ {
		if p := inj.Next(); p.Crash {
			t.Fatal("zero-value injector crashed")
		}
	}
	if inj.Injected() != 0 {
		t.Error("injected count non-zero")
	}
	var nilInj *Injector
	if nilInj.Injected() != 0 {
		t.Error("nil injector count non-zero")
	}
}

func TestDisabledWithoutRNG(t *testing.T) {
	inj := New(1.0, 0, nil)
	if inj.Enabled() {
		t.Error("injector without RNG must be disabled")
	}
	if p := inj.Next(); p.Crash {
		t.Error("disabled injector crashed")
	}
}

func TestInjectionRateMatchesP(t *testing.T) {
	for _, p := range []float64{0.2, 0.5, 0.8} {
		inj := New(p, 15, rand.New(rand.NewSource(7)))
		const n = 20000
		crashes := 0
		for i := 0; i < n; i++ {
			plan := inj.Next()
			if plan.Crash {
				crashes++
				if plan.After != 15 {
					t.Fatalf("After = %v, want 15", plan.After)
				}
			}
		}
		got := float64(crashes) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("p=%v: empirical rate %v", p, got)
		}
		if inj.Injected() != crashes {
			t.Errorf("Injected() = %d, want %d", inj.Injected(), crashes)
		}
	}
}

// TestExpectedFailures checks the paper's §V-D estimate against the
// values it reports: with 118 services and T=0, p = 0.2/0.5/0.8 give
// about 26/114/487 observed failures (expected ≈ 29.5/118/472).
func TestExpectedFailures(t *testing.T) {
	cases := []struct {
		p        float64
		nT       int
		observed float64 // from the paper
	}{
		{0.2, 118, 26},
		{0.5, 118, 114},
		{0.8, 118, 487},
	}
	for _, c := range cases {
		want := ExpectedFailures(c.p, c.nT)
		// The paper's observations should lie within ~25% of the model.
		if math.Abs(want-c.observed)/want > 0.25 {
			t.Errorf("p=%v: model %v vs paper %v diverge", c.p, want, c.observed)
		}
	}
	if got := ExpectedFailures(0, 100); got != 0 {
		t.Errorf("p=0: %v", got)
	}
	if got := ExpectedFailures(1, 100); got < 1e6 {
		t.Errorf("p=1 should be divergent, got %v", got)
	}
}

// TestGeometricRetries simulates the restart-until-success process and
// compares total failures to p/(1-p)·N.
func TestGeometricRetries(t *testing.T) {
	inj := New(0.5, 0, rand.New(rand.NewSource(11)))
	const services = 2000
	failures := 0
	for s := 0; s < services; s++ {
		for inj.Next().Crash { // restarted agent can fail again
			failures++
		}
	}
	want := ExpectedFailures(0.5, services)
	if math.Abs(float64(failures)-want)/want > 0.1 {
		t.Errorf("failures = %d, expected ≈ %v", failures, want)
	}
}
