package failure

import (
	"errors"
	"testing"
)

// drawAll drains n draws of one boundary into a kind sequence.
func drawAll(s *Schedule, b Boundary, n int) []FaultKind {
	out := make([]FaultKind, n)
	for i := range out {
		out[i] = s.Draw(b).Kind
	}
	return out
}

func soakConfig(seed int64) ChaosConfig {
	return ChaosConfig{
		Seed:         seed,
		MessageDropP: 0.2, MessageDupP: 0.1, MessageDelayP: 0.1, MessageReorderP: 0.1,
		InvokeErrorP: 0.2, InvokeTimeoutP: 0.1, InvokeSlowP: 0.1,
		DeployErrorP:  0.3,
		JournalErrorP: 0.2, JournalTornP: 0.1, JournalSlowSyncP: 0.2,
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	for _, b := range []Boundary{BoundaryMessage, BoundaryInvoke, BoundaryDeploy, BoundaryJournalWrite, BoundaryJournalSync} {
		a := drawAll(NewSchedule(soakConfig(42)), b, 500)
		c := drawAll(NewSchedule(soakConfig(42)), b, 500)
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("boundary %s: draw %d differs between same-seed schedules: %s vs %s", b, i, a[i], c[i])
			}
		}
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	a := drawAll(NewSchedule(soakConfig(1)), BoundaryMessage, 200)
	b := drawAll(NewSchedule(soakConfig(2)), BoundaryMessage, 200)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

func TestScheduleMaxConsecutive(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, InvokeErrorP: 1, MaxConsecutive: 3}
	s := NewSchedule(cfg)
	kinds := drawAll(s, BoundaryInvoke, 20)
	consec := 0
	for i, k := range kinds {
		if k == FaultNone {
			if consec != 3 {
				t.Fatalf("draw %d: forced success after %d faults, want 3", i, consec)
			}
			consec = 0
			continue
		}
		consec++
		if consec > 3 {
			t.Fatalf("draw %d: %d consecutive faults exceed MaxConsecutive=3", i, consec)
		}
	}
}

func TestScheduleNilSafe(t *testing.T) {
	var s *Schedule
	if s.Enabled() {
		t.Fatal("nil schedule reports enabled")
	}
	if f := s.Draw(BoundaryMessage); f.Kind != FaultNone {
		t.Fatalf("nil schedule drew %s", f.Kind)
	}
	s.Sleep(1)
	s.SetSleeper(nil)
	if s.Counts() != nil {
		t.Fatal("nil schedule returned counts")
	}
	if s.SettleSeconds() != 0 {
		t.Fatal("nil schedule settles")
	}
}

func TestScheduleCountsAndErrors(t *testing.T) {
	s := NewSchedule(ChaosConfig{Seed: 3, JournalErrorP: 0.5, JournalTornP: 0.5, MaxConsecutive: -1})
	sawErr, sawTorn := false, false
	for i := 0; i < 50; i++ {
		f := s.Draw(BoundaryJournalWrite)
		switch f.Kind {
		case FaultError:
			sawErr = true
		case FaultTorn:
			sawTorn = true
		default:
			t.Fatalf("draw %d: unexpected kind %s with P(error)+P(torn)=1", i, f.Kind)
		}
		if !errors.Is(f.Err, ErrInjected) {
			t.Fatalf("draw %d: fault error %v does not wrap ErrInjected", i, f.Err)
		}
	}
	if !sawErr || !sawTorn {
		t.Fatalf("expected both kinds; err=%v torn=%v", sawErr, sawTorn)
	}
	counts := s.Counts()
	var total int64
	for _, n := range counts {
		total += n
	}
	if total != 50 || s.Faults() != 50 {
		t.Fatalf("counts total %d, Faults %d, want 50", total, s.Faults())
	}
}

func TestScheduleSleeper(t *testing.T) {
	s := NewSchedule(ChaosConfig{Seed: 1, MessageDropP: 0.1})
	var slept float64
	s.SetSleeper(func(sec float64) { slept += sec })
	s.Sleep(2.5)
	s.Sleep(-1) // ignored
	if slept != 2.5 {
		t.Fatalf("slept %v, want 2.5", slept)
	}
}

func TestRetryConfigDelay(t *testing.T) {
	rc := RetryConfig{}.WithDefaults()
	if rc.MaxAttempts != 5 || rc.BackoffBase != 0.5 || rc.BackoffFactor != 2 {
		t.Fatalf("unexpected defaults: %+v", rc)
	}
	want := []float64{0.5, 1, 2, 4}
	for i, w := range want {
		if got := rc.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestChaosConfigEnabledAndSettle(t *testing.T) {
	if (ChaosConfig{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if (ChaosConfig{InvokeErrorP: 0.1}).SettleSeconds() != 0 {
		t.Fatal("invoke-only config should not require settling")
	}
	c := ChaosConfig{MessageDropP: 0.1}
	if !c.Enabled() || c.SettleSeconds() <= 0 {
		t.Fatalf("message chaos must enable and settle; settle=%v", c.SettleSeconds())
	}
}
