package failure

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"ginflow/internal/obs"
)

// This file grows the package beyond the agent-crash injector into a
// deterministic chaos layer: a seeded Schedule draws faults at every
// boundary the system has — broker delivery, service invocation,
// executor deployment, journal I/O — so a chaotic run can be replayed
// from its seed. Each boundary owns an independent RNG stream; within a
// boundary the draw sequence is fully determined by the seed, so the
// fault mix of a run is reproducible even though goroutine interleaving
// may vary which call site receives which draw.

// Boundary names a fault-injection point.
type Boundary int

// The boundaries the chaos schedule can perturb.
const (
	// BoundaryMessage is broker delivery fan-out: drop (with bounded
	// redelivery), duplicate, delay, reorder.
	BoundaryMessage Boundary = iota
	// BoundaryInvoke is service invocation: transient errors, timeouts,
	// slow-downs.
	BoundaryInvoke
	// BoundaryDeploy is executor deployment: transient errors.
	BoundaryDeploy
	// BoundaryJournalWrite is a journal record append: write errors and
	// torn (partial) writes.
	BoundaryJournalWrite
	// BoundaryJournalSync is the journal fsync: slow-downs.
	BoundaryJournalSync
	// BoundarySocket is the network transport's publish dispatch (the
	// TCP frame boundary between a remote node and the listener's
	// broker): drop (with bounded redelivery), duplicate, delay,
	// reorder — the real-network fault mix, applied after the frame
	// protocol's own dedup so the connection resume logic stays honest.
	BoundarySocket
	// BoundarySpace is the space-client boundary: the hand-off between
	// the broker's status-topic feed and the space fold. Faults defer
	// (never lose) or duplicate individual folds, exercising the version
	// gate and resync machinery from the consumer side.
	BoundarySpace

	boundaryCount
)

// String returns the boundary's name.
func (b Boundary) String() string {
	switch b {
	case BoundaryMessage:
		return "message"
	case BoundaryInvoke:
		return "invoke"
	case BoundaryDeploy:
		return "deploy"
	case BoundaryJournalWrite:
		return "journal-write"
	case BoundaryJournalSync:
		return "journal-sync"
	case BoundarySocket:
		return "socket"
	case BoundarySpace:
		return "space"
	}
	return fmt.Sprintf("boundary(%d)", int(b))
}

// FaultKind classifies an injected fault.
type FaultKind int

// The fault kinds a draw can return. Not every kind applies to every
// boundary; see ChaosConfig for the per-boundary probabilities.
const (
	// FaultNone is the (common) no-fault outcome.
	FaultNone FaultKind = iota
	// FaultDrop suppresses a message delivery attempt.
	FaultDrop
	// FaultDuplicate delivers a message twice.
	FaultDuplicate
	// FaultDelay postpones a delivery by Fault.Delay model seconds.
	FaultDelay
	// FaultReorder swaps a delivery with its predecessor in the batch.
	FaultReorder
	// FaultError fails an operation with a transient error.
	FaultError
	// FaultTimeout makes an invocation run its full duration and then
	// fail — the service executed but its response was lost.
	FaultTimeout
	// FaultSlow stretches an operation by Fault.Delay model seconds.
	FaultSlow
	// FaultTorn persists only a prefix of a journal write.
	FaultTorn
)

// String returns the fault kind's name.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	case FaultReorder:
		return "reorder"
	case FaultError:
		return "error"
	case FaultTimeout:
		return "timeout"
	case FaultSlow:
		return "slow"
	case FaultTorn:
		return "torn"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Injected-fault sentinels. ErrInjected is the root every injected
// error wraps, so call sites can tell chaos from genuine failures;
// ErrRetriesExhausted marks a bounded retry budget running out (the
// supervisor escalates it into a session failure).
var (
	ErrInjected         = errors.New("injected fault")
	ErrRetriesExhausted = errors.New("retries exhausted")
)

// Preallocated injected errors, one per fault site, all wrapping
// ErrInjected.
var (
	errInvoke      = fmt.Errorf("%w: transient service invocation error", ErrInjected)
	errTimeout     = fmt.Errorf("%w: service invocation timed out", ErrInjected)
	errDeploy      = fmt.Errorf("%w: transient deployment error", ErrInjected)
	errJournal     = fmt.Errorf("%w: journal write error", ErrInjected)
	errJournalTorn = fmt.Errorf("%w: torn journal write", ErrInjected)
)

// Fault is one drawn perturbation.
type Fault struct {
	// Kind classifies the fault; FaultNone means proceed untouched.
	Kind FaultKind
	// Delay is the fault's duration in model seconds (delays,
	// slow-downs); zero otherwise.
	Delay float64
	// Err is the error the operation should surface, nil for kinds that
	// only shift timing.
	Err error
}

// ChaosConfig parameterises a fault schedule. All probabilities are per
// draw in [0,1]; the kinds of one boundary are mutually exclusive per
// draw (their probabilities are read as adjacent intervals, so their
// sum should stay ≤ 1). Durations are model seconds. The zero value
// disables chaos entirely.
type ChaosConfig struct {
	// Seed selects the deterministic fault schedule; runs with the same
	// seed and config draw identical per-boundary fault sequences.
	Seed int64

	// MessageDropP is the probability a delivery attempt is dropped.
	// Dropped deliveries are redelivered after RedeliverDelay (bounded),
	// so transport stays at-least-once — the floor the sequence-number
	// dedup turns into exactly-once.
	MessageDropP float64
	// MessageDupP is the probability a delivery is duplicated.
	MessageDupP float64
	// MessageDelayP is the probability a delivery is delayed by up to
	// MessageDelayMax model seconds.
	MessageDelayP float64
	// MessageDelayMax bounds injected delivery delays (default 8).
	MessageDelayMax float64
	// MessageReorderP is the probability a delivery is swapped with its
	// predecessor in the subscriber's pending batch.
	MessageReorderP float64
	// RedeliverDelay is the model-time lag before a dropped or
	// duplicated delivery is (re)attempted (default 4).
	RedeliverDelay float64

	// InvokeErrorP is the probability a service invocation fails fast
	// with a transient error.
	InvokeErrorP float64
	// InvokeTimeoutP is the probability an invocation runs its full
	// duration and then fails (response lost).
	InvokeTimeoutP float64
	// InvokeSlowP is the probability an invocation is stretched by up to
	// InvokeSlowMax model seconds.
	InvokeSlowP float64
	// InvokeSlowMax bounds injected invocation slow-downs (default 10).
	InvokeSlowMax float64

	// DeployErrorP is the probability a deployment attempt fails with a
	// transient error.
	DeployErrorP float64

	// JournalErrorP is the probability a journal write fails without
	// touching the segment.
	JournalErrorP float64
	// JournalTornP is the probability a journal write persists only a
	// prefix of its frame before failing.
	JournalTornP float64
	// JournalSlowSyncP is the probability an fsync stalls for up to
	// JournalSyncDelayMax model seconds.
	JournalSlowSyncP float64
	// JournalSyncDelayMax bounds injected fsync stalls (default 2).
	JournalSyncDelayMax float64

	// SocketDropP is the probability a transport-level publish dispatch
	// is dropped. Like broker drops, a dropped dispatch is re-attempted
	// after RedeliverDelay (bounded), so the socket stays at-least-once.
	SocketDropP float64
	// SocketDupP is the probability a transport-level publish is
	// dispatched twice (the second copy after RedeliverDelay).
	SocketDupP float64
	// SocketDelayP is the probability a transport-level publish is
	// delayed by up to SocketDelayMax model seconds before reaching the
	// broker — a genuine reordering against concurrent traffic.
	SocketDelayP float64
	// SocketDelayMax bounds injected socket delays (default 8).
	SocketDelayMax float64
	// SocketReorderP is the probability a transport-level publish is
	// held back for RedeliverDelay so the dispatch behind it overtakes.
	SocketReorderP float64

	// SpaceDropP is the probability one status message's fold into the
	// space is deferred to a later batch (never lost: the space flushes
	// deferred messages on subsequent folds and at shutdown).
	SpaceDropP float64
	// SpaceDupP is the probability one status message is folded twice.
	SpaceDupP float64

	// MaxConsecutive forces a no-fault draw after this many consecutive
	// faults on one boundary, keeping retry budgets sufficient (default
	// 3; negative disables the cap).
	MaxConsecutive int
}

// Enabled reports whether any fault probability is set.
func (c ChaosConfig) Enabled() bool {
	return c.MessageDropP > 0 || c.MessageDupP > 0 || c.MessageDelayP > 0 ||
		c.MessageReorderP > 0 || c.InvokeErrorP > 0 || c.InvokeTimeoutP > 0 ||
		c.InvokeSlowP > 0 || c.DeployErrorP > 0 || c.JournalErrorP > 0 ||
		c.JournalTornP > 0 || c.JournalSlowSyncP > 0 ||
		c.SocketDropP > 0 || c.SocketDupP > 0 || c.SocketDelayP > 0 ||
		c.SocketReorderP > 0 || c.SpaceDropP > 0 || c.SpaceDupP > 0
}

// withDefaults fills unset durations and caps.
func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.MessageDelayMax <= 0 {
		c.MessageDelayMax = 8
	}
	if c.RedeliverDelay <= 0 {
		c.RedeliverDelay = 4
	}
	if c.InvokeSlowMax <= 0 {
		c.InvokeSlowMax = 10
	}
	if c.JournalSyncDelayMax <= 0 {
		c.JournalSyncDelayMax = 2
	}
	if c.SocketDelayMax <= 0 {
		c.SocketDelayMax = 8
	}
	if c.MaxConsecutive == 0 {
		c.MaxConsecutive = 3
	}
	return c
}

// SettleSeconds returns the model-time drain the engine should wait
// after completion before reading final state: long enough for the
// worst redelivery chain and the largest injected delay to land. Zero
// when no message faults are configured.
func (c ChaosConfig) SettleSeconds() float64 {
	msg := c.MessageDropP > 0 || c.MessageDupP > 0 || c.MessageDelayP > 0 || c.MessageReorderP > 0
	sock := c.SocketDropP > 0 || c.SocketDupP > 0 || c.SocketDelayP > 0 || c.SocketReorderP > 0
	space := c.SpaceDropP > 0 || c.SpaceDupP > 0
	if !msg && !sock && !space {
		return 0
	}
	c = c.withDefaults()
	var d float64
	if msg {
		d += c.MessageDelayMax + 3*c.RedeliverDelay + 2
	}
	if sock {
		// A socket fault feeds the broker late; its worst chain stacks on
		// top of whatever the message boundary may add afterwards.
		d += c.SocketDelayMax + 3*c.RedeliverDelay + 2
	}
	if space {
		// Deferred folds flush on the next batch or the serve loop's
		// real-time ticker; a small drain covers the tail.
		d += 2
	}
	return d
}

// RetryConfig bounds the retry-with-backoff applied to transient faults
// at the invocation, deployment and journal boundaries. The zero value
// means defaults: 5 attempts, 0.5 model-second base backoff, factor 2.
type RetryConfig struct {
	// MaxAttempts is the total attempt budget (first try included).
	MaxAttempts int
	// BackoffBase is the delay after the first failed attempt, in model
	// seconds.
	BackoffBase float64
	// BackoffFactor multiplies the delay after each further failure.
	BackoffFactor float64
}

// WithDefaults fills unset fields with the documented defaults.
func (c RetryConfig) WithDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 0.5
	}
	if c.BackoffFactor <= 0 {
		c.BackoffFactor = 2
	}
	return c
}

// Delay returns the backoff before attempt+1, given that 1-based
// attempt just failed: BackoffBase × BackoffFactor^(attempt-1).
func (c RetryConfig) Delay(attempt int) float64 {
	d := c.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= c.BackoffFactor
	}
	return d
}

// Schedule is a live fault schedule: per-boundary seeded RNG streams,
// fault counters, and the consecutive-fault cap. All methods are safe
// for concurrent use and safe on a nil receiver (a nil *Schedule never
// injects), so call sites need no guards.
type Schedule struct {
	cfg     ChaosConfig
	points  [boundaryCount]chaosPoint
	sleepMu sync.RWMutex
	sleeper func(seconds float64)

	// obsDraws / obsFaults mirror the per-boundary draw and injected-
	// fault counts into a metrics registry (SetMetrics); nil entries
	// are ignored, so an un-wired schedule costs nothing extra.
	obsDraws  [boundaryCount]*obs.Counter
	obsFaults [boundaryCount]*obs.Counter
}

// SetMetrics mirrors the schedule's per-boundary draw and fault counts
// into reg: ginflow_chaos_draws_total{boundary} counts every Draw and
// ginflow_chaos_faults_total{boundary} the draws that injected a fault.
// Install before traffic flows (counters start at the call).
func (s *Schedule) SetMetrics(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	for b := Boundary(0); b < boundaryCount; b++ {
		lbl := obs.L("boundary", b.String())
		s.obsDraws[b] = reg.Counter("ginflow_chaos_draws_total",
			"Fault-schedule draws per boundary.", lbl)
		s.obsFaults[b] = reg.Counter("ginflow_chaos_faults_total",
			"Injected chaos faults per boundary.", lbl)
	}
}

type chaosPoint struct {
	mu     sync.Mutex
	rng    *rand.Rand
	consec int
	counts map[FaultKind]int64
}

// NewSchedule builds a schedule from cfg (defaults applied). The
// returned schedule injects nothing until the config has a non-zero
// probability; install a sleeper with SetSleeper to give backoff and
// stall faults a clock.
func NewSchedule(cfg ChaosConfig) *Schedule {
	cfg = cfg.withDefaults()
	s := &Schedule{cfg: cfg}
	for b := Boundary(0); b < boundaryCount; b++ {
		s.points[b].rng = rand.New(rand.NewSource(splitmix(cfg.Seed ^ int64(b+1))))
		s.points[b].counts = map[FaultKind]int64{}
	}
	return s
}

// splitmix finalises a seed so adjacent boundary seeds land far apart.
func splitmix(x int64) int64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Enabled reports whether the schedule can inject anything.
func (s *Schedule) Enabled() bool {
	return s != nil && s.cfg.Enabled()
}

// Config returns the schedule's defaults-applied configuration (zero
// value on a nil schedule).
func (s *Schedule) Config() ChaosConfig {
	if s == nil {
		return ChaosConfig{}
	}
	return s.cfg
}

// SettleSeconds returns the post-completion drain the configuration
// calls for (zero on a nil schedule).
func (s *Schedule) SettleSeconds() float64 {
	if s == nil {
		return 0
	}
	return s.cfg.SettleSeconds()
}

// SetSleeper installs the clock used by Sleep — normally the cluster
// clock's Sleep, so chaos stalls and retry backoffs advance model time.
func (s *Schedule) SetSleeper(fn func(seconds float64)) {
	if s == nil {
		return
	}
	s.sleepMu.Lock()
	s.sleeper = fn
	s.sleepMu.Unlock()
}

// Sleep stalls for the given model seconds on the installed sleeper;
// without one (or on a nil schedule) it returns immediately.
func (s *Schedule) Sleep(seconds float64) {
	if s == nil || seconds <= 0 {
		return
	}
	s.sleepMu.RLock()
	fn := s.sleeper
	s.sleepMu.RUnlock()
	if fn != nil {
		fn(seconds)
	}
}

// Draw returns the next fault of a boundary's stream. After
// MaxConsecutive consecutive faults on one boundary the next draw is
// forced to FaultNone, so bounded retries always see a success window.
func (s *Schedule) Draw(b Boundary) Fault {
	if s == nil || b < 0 || b >= boundaryCount {
		return Fault{}
	}
	p := &s.points[b]
	p.mu.Lock()
	defer p.mu.Unlock()
	s.obsDraws[b].Inc()
	if s.cfg.MaxConsecutive > 0 && p.consec >= s.cfg.MaxConsecutive {
		p.consec = 0
		p.counts[FaultNone]++
		return Fault{}
	}
	f := s.drawLocked(b, p.rng)
	if f.Kind == FaultNone {
		p.consec = 0
	} else {
		p.consec++
		s.obsFaults[b].Inc()
	}
	p.counts[f.Kind]++
	return f
}

// drawLocked maps one uniform draw onto the boundary's fault intervals.
func (s *Schedule) drawLocked(b Boundary, rng *rand.Rand) Fault {
	x := rng.Float64()
	c := s.cfg
	switch b {
	case BoundaryMessage:
		if x < c.MessageDropP {
			return Fault{Kind: FaultDrop}
		}
		x -= c.MessageDropP
		if x < c.MessageDupP {
			return Fault{Kind: FaultDuplicate}
		}
		x -= c.MessageDupP
		if x < c.MessageDelayP {
			return Fault{Kind: FaultDelay, Delay: rng.Float64() * c.MessageDelayMax}
		}
		x -= c.MessageDelayP
		if x < c.MessageReorderP {
			return Fault{Kind: FaultReorder}
		}
	case BoundaryInvoke:
		if x < c.InvokeErrorP {
			return Fault{Kind: FaultError, Err: errInvoke}
		}
		x -= c.InvokeErrorP
		if x < c.InvokeTimeoutP {
			return Fault{Kind: FaultTimeout, Err: errTimeout}
		}
		x -= c.InvokeTimeoutP
		if x < c.InvokeSlowP {
			return Fault{Kind: FaultSlow, Delay: rng.Float64() * c.InvokeSlowMax}
		}
	case BoundaryDeploy:
		if x < c.DeployErrorP {
			return Fault{Kind: FaultError, Err: errDeploy}
		}
	case BoundaryJournalWrite:
		if x < c.JournalErrorP {
			return Fault{Kind: FaultError, Err: errJournal}
		}
		x -= c.JournalErrorP
		if x < c.JournalTornP {
			return Fault{Kind: FaultTorn, Err: errJournalTorn}
		}
	case BoundaryJournalSync:
		if x < c.JournalSlowSyncP {
			return Fault{Kind: FaultSlow, Delay: rng.Float64() * c.JournalSyncDelayMax}
		}
	case BoundarySocket:
		if x < c.SocketDropP {
			return Fault{Kind: FaultDrop}
		}
		x -= c.SocketDropP
		if x < c.SocketDupP {
			return Fault{Kind: FaultDuplicate}
		}
		x -= c.SocketDupP
		if x < c.SocketDelayP {
			return Fault{Kind: FaultDelay, Delay: rng.Float64() * c.SocketDelayMax}
		}
		x -= c.SocketDelayP
		if x < c.SocketReorderP {
			return Fault{Kind: FaultReorder}
		}
	case BoundarySpace:
		if x < c.SpaceDropP {
			return Fault{Kind: FaultDrop}
		}
		x -= c.SpaceDropP
		if x < c.SpaceDupP {
			return Fault{Kind: FaultDuplicate}
		}
	}
	return Fault{}
}

// Counts returns a snapshot of the injected-fault tallies, keyed
// "boundary/kind" (FaultNone and untouched kinds omitted). Nil on a nil
// schedule.
func (s *Schedule) Counts() map[string]int64 {
	if s == nil {
		return nil
	}
	out := map[string]int64{}
	for b := Boundary(0); b < boundaryCount; b++ {
		p := &s.points[b]
		p.mu.Lock()
		for k, n := range p.counts {
			if k == FaultNone || n == 0 {
				continue
			}
			out[fmt.Sprintf("%s/%s", b, k)] = n
		}
		p.mu.Unlock()
	}
	return out
}

// Faults returns the total number of injected (non-FaultNone) draws.
func (s *Schedule) Faults() int64 {
	var total int64
	for _, n := range s.Counts() {
		total += n
	}
	return total
}
