// Package failure implements the fault-injection methodology of the
// paper's resilience evaluation (§V-D): "each running agent failed with a
// predefined probability p after a certain period of time T. Note that a
// restarted agent can fail again. Thus, in this model we can expect
// p/(1-p) × N_T failures where N_T is the number of services whose
// duration is greater than T."
package failure

import (
	"math/rand"
	"sync"
)

// Plan is the fate drawn for one agent incarnation: whether it will
// crash, and how long after its service invocation starts.
type Plan struct {
	Crash bool
	// After is the crash delay in model seconds from service start. A
	// crash only materialises if the service's duration exceeds After
	// (shorter services finish before the failure hits), which is what
	// makes N_T the population at risk.
	After float64
}

// Injector draws crash plans. The zero value never injects failures and
// is safe for concurrent use, as is a configured injector.
type Injector struct {
	// P is the per-incarnation crash probability.
	P float64
	// T is the crash delay in model seconds.
	T float64

	mu       sync.Mutex
	rng      *rand.Rand
	injected int
}

// New returns an injector with probability p and delay t (model
// seconds), drawing from the given RNG (which the injector takes
// ownership of). A nil rng disables injection regardless of p.
func New(p, t float64, rng *rand.Rand) *Injector {
	return &Injector{P: p, T: t, rng: rng}
}

// Enabled reports whether the injector can produce failures.
func (i *Injector) Enabled() bool {
	return i != nil && i.rng != nil && i.P > 0
}

// Next draws the fate of one agent incarnation.
func (i *Injector) Next() Plan {
	if !i.Enabled() {
		return Plan{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.rng.Float64() >= i.P {
		return Plan{}
	}
	i.injected++
	return Plan{Crash: true, After: i.T}
}

// Injected returns the number of crash plans drawn so far. Note that
// plans whose delay exceeds the service duration do not materialise as
// observed failures; compare with the engine's failure count.
func (i *Injector) Injected() int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected
}

// ExpectedFailures returns the paper's p/(1-p) × nT estimate of observed
// failures, where nT is the number of services whose duration exceeds T.
func ExpectedFailures(p float64, nT int) float64 {
	if p >= 1 {
		return float64(nT) * 1e9 // divergent: every incarnation fails
	}
	if p <= 0 {
		return 0
	}
	return p / (1 - p) * float64(nT)
}
