package ginflow

import (
	"context"
	"strings"
	"testing"
	"time"
)

func testConfig(executor ExecutorKind, broker BrokerKind) Config {
	return Config{
		Executor: executor,
		Broker:   broker,
		Cluster:  ClusterConfig{Nodes: 4, Scale: 50 * time.Microsecond},
		Timeout:  30 * time.Second,
	}
}

func TestPublicAPIQuickstart(t *testing.T) {
	def := Diamond(DefaultDiamondSpec(2, 2, false))
	services := NewServiceRegistry()
	services.RegisterNoop(0.1, "split", "work", "merge")
	rep, err := Run(context.Background(), def, services, testConfig(ExecutorSSH, BrokerActiveMQ))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Statuses["MERGE"] != StatusCompleted {
		t.Errorf("merge = %v", rep.Statuses["MERGE"])
	}
	if len(rep.Results["MERGE"]) != 1 {
		t.Errorf("results = %v", rep.Results)
	}
}

func TestPublicAPICentralized(t *testing.T) {
	def := Sequence(3, "s", "in")
	services := NewServiceRegistry()
	services.RegisterNoop(0.1, "s")
	rep, err := Run(context.Background(), def, services, testConfig(ExecutorCentralized, ""))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Statuses["S3"] != StatusCompleted {
		t.Errorf("S3 = %v", rep.Statuses["S3"])
	}
}

func TestPublicAPIFromJSON(t *testing.T) {
	src := `{
	  "name": "json-diamond",
	  "tasks": [
	    {"id": "T1", "service": "s1", "in": ["input"], "dst": ["T2", "T3"]},
	    {"id": "T2", "service": "s2", "dst": ["T4"]},
	    {"id": "T3", "service": "s3", "dst": ["T4"]},
	    {"id": "T4", "service": "s4"}
	  ],
	  "adaptations": [
	    {"id": "a1", "faulty": ["T2"], "replacement": [
	      {"id": "T2bis", "service": "s2alt", "src": ["T1"], "dst": ["T4"]}
	    ]}
	  ]
	}`
	def, err := FromJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	services := NewServiceRegistry()
	services.RegisterNoop(0.1, "s1", "s3", "s4", "s2alt")
	services.RegisterFailing("s2", 0.1)
	rep, err := Run(context.Background(), def, services, testConfig(ExecutorSSH, BrokerActiveMQ))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Adaptations) != 1 || rep.Adaptations[0] != "a1" {
		t.Errorf("adaptations = %v", rep.Adaptations)
	}
	if rep.Statuses["T4"] != StatusCompleted || rep.Statuses["T2bis"] != StatusCompleted {
		t.Errorf("statuses: T4=%v T2bis=%v", rep.Statuses["T4"], rep.Statuses["T2bis"])
	}
}

func TestPublicAPIMontage(t *testing.T) {
	def := Montage()
	if def.TaskCount() != 118 {
		t.Errorf("montage tasks = %d", def.TaskCount())
	}
	services := NewServiceRegistry()
	RegisterMontageServices(services)
	// Just validate + translate here; the full run is covered in
	// internal/montage.
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIEvalHOCL(t *testing.T) {
	out, err := EvalHOCL(`let max = replace x, y by x if x >= y in <2, 9, 4, max>`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "9") {
		t.Errorf("output %q must contain the maximum", out)
	}
	if _, err := EvalHOCL("<<<"); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestPublicAPIBodyReplacement(t *testing.T) {
	spec := DefaultDiamondSpec(2, 2, false)
	def := WithBodyReplacement(Diamond(spec), spec, true, "workalt")
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(def.Adaptations) != 1 {
		t.Errorf("adaptations = %d", len(def.Adaptations))
	}
}

// TestLargeFullyConnectedDiamond pins the acceptance bar for the
// zero-reparse message path: a 12x12 fully-connected diamond (146
// agents, ~2000 result transfers through one broker) completes well
// inside the default 120 s run timeout on SSH + the queue broker.
func TestLargeFullyConnectedDiamond(t *testing.T) {
	if testing.Short() {
		t.Skip("large mesh run")
	}
	def := Diamond(DefaultDiamondSpec(12, 12, true))
	services := NewServiceRegistry()
	services.RegisterNoop(0.5, "split", "work", "merge")
	rep, err := Run(context.Background(), def, services, Config{
		Executor: ExecutorSSH,
		Broker:   BrokerActiveMQ,
		Cluster:  ClusterConfig{Nodes: 25, CoresPerNode: 24, Scale: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("12x12 run failed: %v", err)
	}
	if got := rep.Statuses["MERGE"]; got != StatusCompleted {
		t.Errorf("MERGE status = %v, want completed", got)
	}
	if rep.Tasks != 12*12+2 {
		t.Errorf("tasks = %d, want %d", rep.Tasks, 12*12+2)
	}
}
