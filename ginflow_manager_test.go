package ginflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestManagerConcurrentWorkflows is the acceptance bar for the
// long-lived Manager API: at least 8 concurrent workflow sessions —
// mixed diamonds, sequences and an adaptive run — multiplex over one
// shared cluster and broker, each producing a correct, independent
// report with no cross-run molecule leakage. Run under -race in CI.
func TestManagerConcurrentWorkflows(t *testing.T) {
	mgr, err := New(
		WithExecutor(ExecutorSSH),
		WithBroker(BrokerActiveMQ),
		WithCluster(ClusterConfig{Nodes: 10, Scale: 50 * time.Microsecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	type job struct {
		name    string
		def     *Workflow
		svc     *ServiceRegistry
		exit    string
		tasks   int
		adapted bool
	}
	var jobs []job
	for i := 0; i < 4; i++ {
		h, v := 2+i%3, 2+(i+1)%2
		jobs = append(jobs, job{
			name:  fmt.Sprintf("diamond-%dx%d-%d", h, v, i),
			def:   Diamond(DefaultDiamondSpec(h, v, i%2 == 0)),
			svc:   noopServices(0.1, "split", "work", "merge"),
			exit:  "MERGE",
			tasks: h*v + 2,
		})
	}
	for i := 0; i < 3; i++ {
		n := 3 + i
		jobs = append(jobs, job{
			name:  fmt.Sprintf("sequence-%d", n),
			def:   Sequence(n, "s", "in"),
			svc:   noopServices(0.1, "s"),
			exit:  fmt.Sprintf("S%d", n),
			tasks: n,
		})
	}
	{
		spec := DefaultDiamondSpec(2, 2, false)
		def := WithBodyReplacement(Diamond(spec), spec, false, "workalt")
		def.Tasks[len(def.Tasks)-2].Service = "flaky" // last mesh task
		svc := noopServices(0.1, "split", "work", "merge", "workalt")
		svc.RegisterFailing("flaky", 0.1)
		jobs = append(jobs, job{
			name: "adaptive", def: def, svc: svc,
			exit: "MERGE", tasks: 2*2 + 2, adapted: true,
		})
	}
	if len(jobs) < 8 {
		t.Fatalf("want >= 8 concurrent jobs, built %d", len(jobs))
	}

	handles := make([]*Handle, len(jobs))
	for i, j := range jobs {
		h, err := mgr.Submit(context.Background(), j.def, j.svc)
		if err != nil {
			t.Fatalf("%s: submit: %v", j.name, err)
		}
		handles[i] = h
	}

	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(j job, h *Handle) {
			defer wg.Done()
			rep, err := h.Wait(context.Background())
			if err != nil {
				t.Errorf("%s: wait: %v", j.name, err)
				return
			}
			if rep.Tasks != j.tasks {
				t.Errorf("%s: tasks = %d, want %d", j.name, rep.Tasks, j.tasks)
			}
			if got := rep.Statuses[j.exit]; got != StatusCompleted {
				t.Errorf("%s: exit %s = %v", j.name, j.exit, got)
			}
			if j.adapted != (len(rep.Adaptations) > 0) {
				t.Errorf("%s: adaptations = %v", j.name, rep.Adaptations)
			}
			// No cross-run leakage: a report carries exactly its own
			// workflow's task statuses, all completed (an alien molecule
			// would surface as an unexpected key).
			for id := range rep.Statuses {
				if _, ok := j.def.TaskByID(id); !ok {
					found := false
					for _, a := range j.def.Adaptations {
						for _, r := range a.Replacement {
							if r.ID == id {
								found = true
							}
						}
					}
					if !found {
						t.Errorf("%s: foreign task %q in report", j.name, id)
					}
				}
			}
		}(jobs[i], handles[i])
	}
	wg.Wait()

	if got := mgr.Active(); got != 0 {
		t.Errorf("active sessions after completion = %d", got)
	}
}

// TestManagerHandleEventsAndCancel exercises the Handle surface: live
// event streaming on one session while a second is cancelled mid-run
// with a caller-supplied cause.
func TestManagerHandleEventsAndCancel(t *testing.T) {
	mgr, err := New(WithCluster(ClusterConfig{Nodes: 6, Scale: 50 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	// Session 1: stream events.
	def := Diamond(DefaultDiamondSpec(2, 2, false))
	h1, err := mgr.Submit(context.Background(), def, noopServices(0.1, "split", "work", "merge"))
	if err != nil {
		t.Fatal(err)
	}
	// Session 2: a crawler to cancel.
	h2, err := mgr.Submit(context.Background(), Sequence(3, "slow", "in"), noopServices(1e5, "slow"))
	if err != nil {
		t.Fatal(err)
	}

	completed := 0
	for e := range h1.Events() {
		if e.Kind == EventTaskCompleted {
			completed++
		}
	}
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if want := 2*2 + 2; completed != want {
		t.Errorf("task-completed events = %d, want %d", completed, want)
	}

	cause := errors.New("user pressed stop")
	h2.Cancel(cause)
	if _, err := h2.Wait(context.Background()); !errors.Is(err, ErrCancelled) || !errors.Is(err, cause) {
		t.Errorf("cancelled wait err = %v", err)
	}
}

// TestManagerSubmitValidation pins the fail-fast sentinel errors.
func TestManagerSubmitValidation(t *testing.T) {
	mgr, err := New(WithCluster(ClusterConfig{Nodes: 2, Scale: 50 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	def := Sequence(2, "nowhere", "in")
	if _, err := mgr.Submit(context.Background(), def, NewServiceRegistry()); !errors.Is(err, ErrUnknownService) {
		t.Errorf("err = %v, want ErrUnknownService", err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(context.Background(), def, NewServiceRegistry()); !errors.Is(err, ErrManagerClosed) {
		t.Errorf("err = %v, want ErrManagerClosed", err)
	}
}

func noopServices(duration float64, names ...string) *ServiceRegistry {
	reg := NewServiceRegistry()
	reg.RegisterNoop(duration, names...)
	return reg
}
